// Serving-campaign benchmark: sweeps offered QPS x scheduler across TRON,
// GHOST, and mixed TRON+GHOST fleets and records the saturation knee (p99
// latency, goodput, energy per request) plus a headline event-loop throughput
// number (1M requests through a 4-accelerator fleet) per fleet.  The mixed
// scenario exercises the multi-tenant path: one catalog mixing transformer
// and GNN workloads over a fleet alternating TRON and GHOST slots with
// kind-aware routing.  The elastic scenario starts the same mixed fleet at
// two slots under bursty traffic and compares autoscaling policies (static
// vs queue-depth vs target-utilization) with two-tier priorities, recording
// per-tenant SLO attainment.  The closed-loop scenario swaps the open-loop
// trace for a session pool (per-tenant clients with exponential think times
// and log-normal per-request sequence lengths) and records end-to-end
// session latencies — the feedback path through serve::ClosedLoopSource.
// Self-contained like bench_kernels (steady_clock, no framework); emits
// BENCH_serve.json alongside the human-readable tables.
//
// Usage:
//   bench_serve [--smoke] [--out <path>]
//     --smoke   reduced trace lengths (CI sanity run)
//     --out     JSON output path (default BENCH_serve.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <fstream>
#include <iostream>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/provenance.hpp"
#include "common/rng.hpp"
#include "serve/cache.hpp"
#include "serve/campaign.hpp"
#include "serve/event_heap.hpp"
#include "serve/observe.hpp"
#include "serve/shard.hpp"
#include "sim/registry.hpp"

namespace {

using namespace lumos;

struct Headline {
  std::string fleet_label;
  std::size_t requests = 0;
  std::size_t fleet = 0;
  double wall_s = 0.0;
  double requests_per_s = 0.0;
  double p99_latency_s = 0.0;
  double goodput_qps = 0.0;
};

// One fleet scenario: the knee sweep plus the timed 1M-request point.
struct ScenarioResult {
  serve::CampaignConfig config;
  std::vector<serve::CampaignPoint> points;
  Headline headline;
};

ScenarioResult run_scenario(const std::string& label,
                            const std::vector<std::string>& fleet_template,
                            const serve::WorkloadCatalog& catalog, bool smoke) {
  ScenarioResult out;
  const std::size_t fleet = 4;
  const std::size_t max_batch = 8;
  const serve::FleetConfig fleet_cfg = serve::FleetConfig::cycled(fleet_template, fleet);
  const double capacity = serve::fleet_capacity_qps(catalog, fleet_cfg, max_batch);

  serve::CampaignConfig cfg;
  cfg.name = label + " saturation sweep";
  cfg.fleet_template = fleet_template;
  // Below / near / past the batched knee (FIFO saturates far earlier, which
  // is exactly the point of the comparison).
  cfg.qps = {0.5 * capacity, 0.8 * capacity, 1.1 * capacity};
  cfg.schedulers = {serve::SchedulerKind::kFifo, serve::SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {fleet};
  cfg.max_batches = {max_batch};
  cfg.requests_per_point = smoke ? 10000 : 200000;
  cfg.seed = 7;
  out.points = serve::run_campaign(cfg, catalog);
  out.config = cfg;

  // Headline: one timed point (trace generation + event loop) at 80% of the
  // batched knee.
  serve::Scenario scenario;
  scenario.fleet = fleet_cfg;
  scenario.catalog = catalog;
  scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = max_batch;
  scenario.traffic.open.offered_qps = 0.8 * capacity;
  scenario.traffic.open.request_count = smoke ? 50000 : 1000000;
  scenario.traffic.open.seed = 11;
  const auto t0 = std::chrono::steady_clock::now();
  const serve::FleetMetrics m = serve::simulate(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  out.headline.fleet_label = label;
  out.headline.requests = scenario.traffic.open.request_count;
  out.headline.fleet = fleet;
  out.headline.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.headline.requests_per_s =
      static_cast<double>(out.headline.requests) / out.headline.wall_s;
  out.headline.p99_latency_s = m.p99_latency_s;
  out.headline.goodput_qps = m.goodput_qps;
  return out;
}

// Closed-loop scenario: the mixed TRON+GHOST catalog served to a pool of
// client sessions (each pinned to one tenant, issuing request -> completion
// -> exponential think -> next request) with log-normal per-request sequence
// lengths on the transformer tenants.  Arrival rate is set by service speed
// instead of an offered QPS; the result records end-to-end session latency.
struct ClosedLoopResult {
  std::string label;
  serve::ClosedLoopConfig config;
  serve::FleetMetrics metrics;
  double wall_s = 0.0;
  double requests_per_s = 0.0;
};

ClosedLoopResult run_closed_loop_scenario(bool smoke) {
  serve::WorkloadCatalog catalog = serve::WorkloadCatalog::mixed_default();
  catalog.apply_seqlen_dist(serve::SeqLenDist::kLogNormal);

  ClosedLoopResult out;
  out.label = "TRON+GHOST closed-loop";
  serve::Scenario scenario;
  scenario.fleet = serve::FleetConfig::cycled({"tron", "ghost"}, 4);
  scenario.catalog = catalog;
  scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = 8;
  scenario.traffic.mode = serve::LoopMode::kClosed;
  scenario.traffic.closed.sessions = smoke ? 64 : 512;
  scenario.traffic.closed.requests_per_session = smoke ? 50 : 200;
  scenario.traffic.closed.think_time_mean_s = 2e-3;
  scenario.traffic.closed.seed = 23;
  out.config = scenario.traffic.closed;
  const auto t0 = std::chrono::steady_clock::now();
  out.metrics = serve::simulate(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.requests_per_s = static_cast<double>(out.metrics.completed) / out.wall_s;
  return out;
}

// Observer-overhead comparison: the TRON headline scenario run unobserved and
// then with the tracer (sampled), timeline, and profiler enabled.  Observers
// must never change results (p99/goodput parity is gated by bench_check.py)
// and must stay cheap (overhead_fraction gated too).
struct ObserverOverhead {
  std::string label = "TRON observed";
  std::size_t requests = 0;
  double trace_sample = 0.0;
  double off_wall_s = 0.0;
  double off_requests_per_s = 0.0;
  double on_wall_s = 0.0;
  double on_requests_per_s = 0.0;
  double overhead_fraction = 0.0;  // on_wall / off_wall - 1
  double off_p99_latency_s = 0.0;
  double on_p99_latency_s = 0.0;
  double off_goodput_qps = 0.0;
  double on_goodput_qps = 0.0;
  std::size_t sampled_requests = 0;
  std::size_t request_events = 0;
  std::size_t batch_spans = 0;
  std::size_t timeline_windows = 0;
};

ObserverOverhead run_observer_overhead(bool smoke) {
  const serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  const std::size_t fleet = 4;
  const std::size_t max_batch = 8;
  const serve::FleetConfig fleet_cfg = serve::FleetConfig::cycled({"tron"}, fleet);
  const double capacity = serve::fleet_capacity_qps(catalog, fleet_cfg, max_batch);

  serve::Scenario scenario;
  scenario.fleet = fleet_cfg;
  scenario.catalog = catalog;
  scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = max_batch;
  scenario.traffic.open.offered_qps = 0.8 * capacity;
  scenario.traffic.open.request_count = smoke ? 50000 : 1000000;
  scenario.traffic.open.seed = 11;

  ObserverOverhead out;
  out.requests = scenario.traffic.open.request_count;
  out.trace_sample = 1.0 / 64.0;

  // Best-of-3 wall times: the simulations are deterministic (identical
  // metrics every rep), only the timing is noisy, and the min is the stablest
  // estimator for a CI-gated ratio.
  constexpr int kReps = 3;
  serve::FleetMetrics off;
  out.off_wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    off = serve::simulate(scenario);
    const auto t1 = std::chrono::steady_clock::now();
    out.off_wall_s = std::min(out.off_wall_s, std::chrono::duration<double>(t1 - t0).count());
  }
  out.off_requests_per_s = static_cast<double>(out.requests) / out.off_wall_s;
  out.off_p99_latency_s = off.p99_latency_s;
  out.off_goodput_qps = off.goodput_qps;

  // The gated overhead is the cost of *passive* observation (sampled tracing
  // + windowed timelines), the configuration a production-style run would
  // leave on.  The event-loop profiler is excluded: it reads steady_clock
  // several times per loop iteration by design (self-measurement), and its
  // cost is reported in its own table rather than gated here.
  scenario.observe.trace.enabled = true;
  scenario.observe.trace.sample = out.trace_sample;
  scenario.observe.timeline.enabled = true;
  scenario.observe.timeline.window_s = 1e-3;
  serve::Observation obs;
  serve::FleetMetrics on;
  out.on_wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    obs = serve::Observation{};
    const auto t2 = std::chrono::steady_clock::now();
    on = serve::simulate(scenario, &obs);
    const auto t3 = std::chrono::steady_clock::now();
    out.on_wall_s = std::min(out.on_wall_s, std::chrono::duration<double>(t3 - t2).count());
  }
  out.on_requests_per_s = static_cast<double>(out.requests) / out.on_wall_s;
  out.overhead_fraction = out.on_wall_s / out.off_wall_s - 1.0;
  out.on_p99_latency_s = on.p99_latency_s;
  out.on_goodput_qps = on.goodput_qps;
  out.sampled_requests = obs.tracer->sampled_requests();
  out.request_events = obs.tracer->request_events().size();
  out.batch_spans = obs.tracer->batch_spans().size();
  out.timeline_windows = obs.timeline->windows().size();
  return out;
}

// Cell-sharded scaling: one 16-slot TRON scenario simulated serially and as
// {1, 2, 4, 8} independent cells on the thread pool (serve/shard.hpp), plus a
// 10M-request HDR-percentile 8-cell run — the "datacenter, not a rack" scale
// point.  The cells == 1 point is gated bit-identical to the serial run by
// bench_check.py (in-file parity at zero tolerance); cells > 1 points are
// deterministic for a fixed cell count, so their simulated results are gated
// at det tolerance like every other deterministic field.  Speedups are
// wall-clock vs the serial run (best-of-3 each) and scale with the host's
// core count — `threads` is recorded so a 1-core runner's ~1x does not read
// as a regression against an 8-core baseline (speedup is gated in the timing
// band, relative to the committed baseline, not as an absolute floor).
struct ShardedPoint {
  std::size_t cells = 0;
  double wall_s = 0.0;  // best-of-3
  double requests_per_s = 0.0;
  double speedup = 0.0;  // serial wall / this wall
  std::size_t completed = 0;
  double p99_latency_s = 0.0;
  double goodput_qps = 0.0;
};

struct ShardedResult {
  std::string label = "TRON sharded";
  std::size_t requests = 0;
  std::size_t fleet = 0;
  std::size_t threads = 0;
  double serial_wall_s = 0.0;
  double serial_requests_per_s = 0.0;
  std::size_t serial_completed = 0;
  double serial_p99_latency_s = 0.0;
  double serial_goodput_qps = 0.0;
  std::vector<ShardedPoint> points;
  // The scale headline: 10M requests, HDR percentiles, 8 cells.
  std::size_t scale_requests = 0;
  std::size_t scale_cells = 0;
  double scale_wall_s = 0.0;
  double scale_requests_per_s = 0.0;
  std::size_t scale_completed = 0;
  double scale_p99_latency_s = 0.0;
  double scale_goodput_qps = 0.0;
};

ShardedResult run_sharded_scenario(bool smoke) {
  const serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  const std::size_t fleet = 16;
  const std::size_t max_batch = 8;
  const serve::FleetConfig fleet_cfg = serve::FleetConfig::cycled({"tron"}, fleet);
  const double capacity = serve::fleet_capacity_qps(catalog, fleet_cfg, max_batch);

  serve::Scenario scenario;
  scenario.fleet = fleet_cfg;
  scenario.catalog = catalog;
  scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = max_batch;
  scenario.traffic.open.offered_qps = 0.8 * capacity;
  scenario.traffic.open.request_count = smoke ? 50000 : 1000000;
  scenario.traffic.open.seed = 11;

  ShardedResult out;
  out.requests = scenario.traffic.open.request_count;
  out.fleet = fleet;
  out.threads = ThreadPool::global().thread_count();

  constexpr int kReps = 3;
  serve::FleetMetrics serial;
  out.serial_wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    serial = serve::simulate(scenario);
    const auto t1 = std::chrono::steady_clock::now();
    out.serial_wall_s =
        std::min(out.serial_wall_s, std::chrono::duration<double>(t1 - t0).count());
  }
  out.serial_requests_per_s = static_cast<double>(out.requests) / out.serial_wall_s;
  out.serial_completed = serial.completed;
  out.serial_p99_latency_s = serial.p99_latency_s;
  out.serial_goodput_qps = serial.goodput_qps;

  for (const std::size_t cells : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    ShardedPoint point;
    point.cells = cells;
    point.wall_s = std::numeric_limits<double>::infinity();
    serve::FleetMetrics m;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      m = serve::simulate_sharded(scenario, cells);
      const auto t1 = std::chrono::steady_clock::now();
      point.wall_s = std::min(point.wall_s, std::chrono::duration<double>(t1 - t0).count());
    }
    point.requests_per_s = static_cast<double>(out.requests) / point.wall_s;
    point.speedup = out.serial_wall_s / point.wall_s;
    point.completed = m.completed;
    point.p99_latency_s = m.p99_latency_s;
    point.goodput_qps = m.goodput_qps;
    out.points.push_back(point);
  }

  // The 10M-request scale run: HDR percentile sketches keep latency memory
  // bounded (exact mode would retain every sample), 8 cells split the work.
  serve::Scenario scale = scenario;
  scale.sim.percentile_mode = serve::PercentileMode::kHdr;
  scale.traffic.open.request_count = smoke ? 100000 : 10000000;
  out.scale_requests = scale.traffic.open.request_count;
  out.scale_cells = 8;
  const auto t0 = std::chrono::steady_clock::now();
  const serve::FleetMetrics m = serve::simulate_sharded(scale, out.scale_cells);
  const auto t1 = std::chrono::steady_clock::now();
  out.scale_wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.scale_requests_per_s = static_cast<double>(out.scale_requests) / out.scale_wall_s;
  out.scale_completed = m.completed;
  out.scale_p99_latency_s = m.p99_latency_s;
  out.scale_goodput_qps = m.goodput_qps;
  return out;
}

// Continuous-batching scenario: the TRON catalog with log-normal decode
// lengths (median 32 tokens) and per-token SLOs, served at 1x and 2x its
// decode-aware capacity under both decode schedules.  Monolithic batching
// holds every lane until the batch's longest decode finishes (the
// static-batching baseline), so waiting prefills eat head-of-line TTFT;
// continuous batching admits them into freed lanes at token boundaries.  The
// acceptance contract — continuous mean TTFT no worse than monolithic at
// every load — is gated in-file by bench_check.py; the per-mode simulated
// metrics are deterministic (det tolerance), the wall time sits in the
// timing band.
struct DecodeModeMetrics {
  double mean_ttft_s = 0.0;
  double p95_ttft_s = 0.0;
  double mean_tpot_s = 0.0;
  double p95_tpot_s = 0.0;
  double tokens_per_s = 0.0;
  double p99_latency_s = 0.0;
  double goodput_qps = 0.0;
  double ttft_attainment = 0.0;
  double decode_occupancy = 0.0;
};

struct ContinuousBatchingPoint {
  double capacity_x = 0.0;
  double offered_qps = 0.0;
  DecodeModeMetrics mono;
  DecodeModeMetrics cont;
  double ttft_ratio = 0.0;  // mono mean TTFT / cont mean TTFT (>= 1: cont wins)
};

struct ContinuousBatchingResult {
  std::string label = "TRON continuous batching";
  std::size_t requests = 0;
  std::size_t fleet = 0;
  std::size_t decode_tokens = 0;
  double capacity_qps = 0.0;
  double wall_s = 0.0;           // all four runs together
  double requests_per_s = 0.0;
  std::vector<ContinuousBatchingPoint> points;
};

ContinuousBatchingResult run_continuous_batching_scenario(bool smoke) {
  serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  const std::size_t decode_tokens = 32;
  catalog.apply_decode(serve::SeqLenDist::kLogNormal, decode_tokens);
  catalog.apply_token_slos(500e-6, 100e-6);
  const std::size_t fleet = 4;
  const std::size_t max_batch = 8;
  const serve::FleetConfig fleet_cfg = serve::FleetConfig::cycled({"tron"}, fleet);
  const double capacity = serve::fleet_capacity_qps(catalog, fleet_cfg, max_batch);

  ContinuousBatchingResult out;
  out.requests = smoke ? 20000 : 200000;
  out.fleet = fleet;
  out.decode_tokens = decode_tokens;
  out.capacity_qps = capacity;

  const auto run_mode = [&](double qps, serve::DecodeMode mode) {
    serve::Scenario scenario;
    scenario.fleet = fleet_cfg;
    scenario.catalog = catalog;
    scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
    scenario.batch.max_batch = max_batch;
    scenario.sim.decode_mode = mode;
    scenario.traffic.open.offered_qps = qps;
    scenario.traffic.open.request_count = out.requests;
    scenario.traffic.open.seed = 37;
    const serve::FleetMetrics m = serve::simulate(scenario);
    DecodeModeMetrics r;
    r.mean_ttft_s = m.mean_ttft_s;
    r.p95_ttft_s = m.p95_ttft_s;
    r.mean_tpot_s = m.mean_tpot_s;
    r.p95_tpot_s = m.p95_tpot_s;
    r.tokens_per_s = m.tokens_per_s;
    r.p99_latency_s = m.p99_latency_s;
    r.goodput_qps = m.goodput_qps;
    r.ttft_attainment = m.ttft_attainment;
    r.decode_occupancy = m.mean_decode_occupancy;
    return r;
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (const double x : {1.0, 2.0}) {
    ContinuousBatchingPoint p;
    p.capacity_x = x;
    p.offered_qps = x * capacity;
    p.mono = run_mode(p.offered_qps, serve::DecodeMode::kMonolithic);
    p.cont = run_mode(p.offered_qps, serve::DecodeMode::kContinuous);
    p.ttft_ratio = p.cont.mean_ttft_s > 0.0 ? p.mono.mean_ttft_s / p.cont.mean_ttft_s : 0.0;
    out.points.push_back(p);
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.requests_per_s =
      static_cast<double>(2 * out.points.size() * out.requests) / out.wall_s;
  return out;
}

// Hybrid-fleet TCO scenario: one 3-tenant decode workload (a premium tier-0
// "vit" tenant over bulk bert/gpt2 tiers, log-normal decode lengths,
// per-token SLOs) served by three fleets — photonic ({"tron"}), electronic
// ({"v100"} through arch::PlatformAdapter), and hybrid ({"tron", "v100"}) —
// under cost-aware routing, at 1x and 2x the hybrid fleet's decode-aware
// capacity.  Every fleet sees the *same* offered load, so attainment, energy
// per request, and dollars per request compare apples to apples: the paper's
// TCO question ("when does a photonic slot pay for itself?") in one table.
// The in-file acceptance gate (bench_check.py) pins the hybrid fleet's
// tier-0 attainment at or above the worse homogeneous fleet at every load.
struct HybridFleetPoint {
  std::string fleet_label;
  double capacity_x = 0.0;
  double offered_qps = 0.0;
  std::size_t completed = 0;
  double p99_latency_s = 0.0;
  double goodput_qps = 0.0;
  double slo_attainment = 0.0;
  double tier0_attainment = 0.0;  // the premium tenant's own SLO attainment
  double mean_ttft_s = 0.0;
  double tokens_per_s = 0.0;
  double energy_per_request_j = 0.0;
  double fleet_cost_usd = 0.0;
  double cost_per_request_usd = 0.0;
};

struct HybridFleetResult {
  std::string label = "hybrid fleet TCO";
  std::size_t requests = 0;
  std::size_t fleet = 0;
  double capacity_qps = 0.0;  // the hybrid fleet's decode-aware capacity
  double wall_s = 0.0;        // all six runs together
  double requests_per_s = 0.0;
  std::vector<HybridFleetPoint> points;  // 3 fleets x 2 loads, fleet-major
};

HybridFleetResult run_hybrid_fleet_scenario(bool smoke) {
  serve::WorkloadCatalog catalog;
  catalog.add_transformer("vit-premium", sim::transformer_by_name("vit"), 0.5);
  catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128), 5.0);
  catalog.add_transformer("gpt2/256", sim::transformer_by_name("gpt2", 256), 4.5);
  catalog.set_priority(1, 1);
  catalog.set_priority(2, 1);
  catalog.apply_decode(serve::SeqLenDist::kLogNormal, 32);
  catalog.apply_token_slos(500e-6, 100e-6);
  // One explicit decode-aware SLO contract per tenant, shared by every fleet.
  // The fallback SLO would be derived per fleet from its own unloaded
  // latencies (a v100 fleet would grade itself on a v100 curve) and ignores
  // decode time entirely; instead each tenant's contract is 10x its unloaded
  // photonic-reference request (prefill + median decode tail at batch 1).
  {
    const serve::EstimateCache ref("tron", catalog);
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      const auto ctx = static_cast<std::uint32_t>(
          catalog.workload(w).transformer_config().seq_len);
      const double per_request_s = ref.estimate(w, 1).latency_s +
                                   31.0 * ref.decode_step(w, 1, ctx).latency_s;
      catalog.set_slo(w, 10.0 * per_request_s);
    }
  }

  const std::size_t fleet = 4;
  const std::size_t max_batch = 8;
  const std::vector<std::pair<std::string, std::vector<std::string>>> fleets{
      {"photonic tron", {"tron"}},
      {"electronic v100", {"v100"}},
      {"hybrid tron+v100", {"tron", "v100"}},
  };
  // Every fleet is offered multiples of the *hybrid* fleet's capacity, so the
  // three fleets answer the same demand.
  const double capacity = serve::fleet_capacity_qps(
      catalog, serve::FleetConfig::cycled({"tron", "v100"}, fleet), max_batch);

  HybridFleetResult out;
  out.requests = smoke ? 20000 : 200000;
  out.fleet = fleet;
  out.capacity_qps = capacity;

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [label, fleet_template] : fleets) {
    for (const double x : {1.0, 2.0}) {
      serve::Scenario scenario;
      scenario.fleet = serve::FleetConfig::cycled(fleet_template, fleet,
                                                  serve::RoutingPolicy::kCostAware);
      scenario.catalog = catalog;
      scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
      scenario.batch.max_batch = max_batch;
      scenario.traffic.open.offered_qps = x * capacity;
      scenario.traffic.open.request_count = out.requests;
      scenario.traffic.open.seed = 37;
      const serve::FleetMetrics m = serve::simulate(scenario);
      HybridFleetPoint p;
      p.fleet_label = label;
      p.capacity_x = x;
      p.offered_qps = x * capacity;
      p.completed = m.completed;
      p.p99_latency_s = m.p99_latency_s;
      p.goodput_qps = m.goodput_qps;
      p.slo_attainment = m.slo_attainment;
      p.tier0_attainment = m.tenants.front().slo_attainment;
      p.mean_ttft_s = m.mean_ttft_s;
      p.tokens_per_s = m.tokens_per_s;
      p.energy_per_request_j = m.energy_per_request_j;
      p.fleet_cost_usd = m.fleet_cost_usd;
      p.cost_per_request_usd = m.cost_per_request_usd;
      out.points.push_back(std::move(p));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.requests_per_s =
      static_cast<double>(out.points.size() * out.requests) / out.wall_s;
  return out;
}

// Event-queue micro-benchmark: the classic hold model (prefill H events, then
// N rounds of pop-min + push at popped time + exponential increment) over the
// three containers a simulation could schedule with.  All three pop the same
// total order (EventHeap/CalendarQueue by contract, std::priority_queue by
// construction), so the popped-time checksums must match exactly — the bench
// aborts if they do not.  ops_per_s is gated in the timing band.
struct QueueBenchResult {
  std::string label;
  std::size_t events = 0;
  double wall_s = 0.0;  // best-of-3
  double ops_per_s = 0.0;
  double checksum = 0.0;
};

struct BenchEvent {
  double time_s = 0.0;
  std::uint64_t seq = 0;
};
struct BenchEventLater {
  bool operator()(const BenchEvent& a, const BenchEvent& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

// One hold-model run: returns the popped-time checksum (kept out of the
// timed loop's dead-code reach).
template <typename PushFn, typename PopFn>
double hold_model(std::size_t hold, std::size_t rounds, PushFn&& push, PopFn&& pop) {
  Rng rng(1234);
  std::uint64_t seq = 0;
  double t = 0.0;
  for (std::size_t i = 0; i < hold; ++i) {
    t += rng.exponential(1e-4);
    push(BenchEvent{t, seq++});
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < rounds; ++i) {
    const BenchEvent e = pop();
    checksum += e.time_s;
    push(BenchEvent{e.time_s + rng.exponential(1e-4), seq++});
  }
  for (std::size_t i = 0; i < hold; ++i) checksum += pop().time_s;
  return checksum;
}

std::vector<QueueBenchResult> run_event_queue_bench(bool smoke) {
  const std::size_t hold = 4096;
  const std::size_t rounds = smoke ? 200000 : 2000000;
  constexpr int kReps = 3;
  std::vector<QueueBenchResult> out;

  const auto time_variant = [&](const std::string& label, auto make_run) {
    QueueBenchResult r;
    r.label = label;
    r.events = rounds;
    r.wall_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      r.checksum = make_run();
      const auto t1 = std::chrono::steady_clock::now();
      r.wall_s = std::min(r.wall_s, std::chrono::duration<double>(t1 - t0).count());
    }
    r.ops_per_s = static_cast<double>(rounds) / r.wall_s;
    out.push_back(r);
  };

  time_variant("event_heap", [&] {
    serve::EventHeap<BenchEvent, BenchEventLater> q;
    q.reserve(hold + 1);
    return hold_model(hold, rounds, [&](BenchEvent e) { q.push(e); },
                      [&] { return q.pop(); });
  });
  time_variant("calendar_queue", [&] {
    // Bucket width ~ the mean inter-event gap: about one event per day.
    serve::CalendarQueue<BenchEvent, BenchEventLater> q(1e-4, 1024);
    return hold_model(hold, rounds, [&](BenchEvent e) { q.push(e); },
                      [&] { return q.pop(); });
  });
  time_variant("std_priority_queue", [&] {
    std::priority_queue<BenchEvent, std::vector<BenchEvent>, BenchEventLater> q;
    return hold_model(hold, rounds, [&](BenchEvent e) { q.push(e); }, [&] {
      BenchEvent e = q.top();
      q.pop();
      return e;
    });
  });

  for (const QueueBenchResult& r : out) {
    if (r.checksum != out.front().checksum) {
      std::fprintf(stderr, "error: event-queue checksum mismatch: %s %.17g vs %s %.17g\n",
                   r.label.c_str(), r.checksum, out.front().label.c_str(),
                   out.front().checksum);
      std::exit(1);
    }
  }
  return out;
}

void write_indented_campaign(std::ofstream& f, const serve::CampaignConfig& config,
                             const std::vector<serve::CampaignPoint>& points) {
  std::ostringstream campaign;
  serve::write_campaign_json(config, points, campaign);
  // Indent the embedded campaign object to keep the file readable.
  std::istringstream lines(campaign.str());
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    f << (first ? "" : "\n") << "    " << line;
    first = false;
  }
}

void write_decode_mode_fields(std::ofstream& f, const char* prefix,
                              const DecodeModeMetrics& r) {
  f << ", \"" << prefix << "_mean_ttft_s\": " << r.mean_ttft_s << ", \"" << prefix
    << "_p95_ttft_s\": " << r.p95_ttft_s << ", \"" << prefix
    << "_mean_tpot_s\": " << r.mean_tpot_s << ", \"" << prefix
    << "_p95_tpot_s\": " << r.p95_tpot_s << ", \"" << prefix
    << "_tokens_per_s\": " << r.tokens_per_s << ", \"" << prefix
    << "_p99_latency_s\": " << r.p99_latency_s << ", \"" << prefix
    << "_goodput_qps\": " << r.goodput_qps << ", \"" << prefix
    << "_ttft_attainment\": " << r.ttft_attainment << ", \"" << prefix
    << "_decode_occupancy\": " << r.decode_occupancy;
}

bool write_json(const std::vector<ScenarioResult>& scenarios,
                const ClosedLoopResult& closed, const ScenarioResult& overload,
                const ObserverOverhead& observer, const ShardedResult& sharded,
                const ContinuousBatchingResult& batching,
                const HybridFleetResult& hybrid,
                const std::vector<QueueBenchResult>& queues, const std::string& path,
                bool smoke) {
  std::ofstream f(path);
  f << "{\n  \"bench\": \"serve\",\n";
  f << "  " << provenance_json(ThreadPool::global().thread_count()) << ",\n";
  f << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  f << "  \"threads\": " << ThreadPool::global().thread_count() << ",\n";
  f << "  \"observer_overhead\": [\n";
  f << "    {\"label\": \"" << observer.label << "\", \"requests\": " << observer.requests
    << ", \"trace_sample\": " << observer.trace_sample
    << ", \"off_wall_s\": " << observer.off_wall_s
    << ", \"off_requests_per_s\": " << observer.off_requests_per_s
    << ", \"on_wall_s\": " << observer.on_wall_s
    << ", \"on_requests_per_s\": " << observer.on_requests_per_s
    << ", \"overhead_fraction\": " << observer.overhead_fraction
    << ", \"off_p99_latency_s\": " << observer.off_p99_latency_s
    << ", \"on_p99_latency_s\": " << observer.on_p99_latency_s
    << ", \"off_goodput_qps\": " << observer.off_goodput_qps
    << ", \"on_goodput_qps\": " << observer.on_goodput_qps
    << ", \"sampled_requests\": " << observer.sampled_requests
    << ", \"request_events\": " << observer.request_events
    << ", \"batch_spans\": " << observer.batch_spans
    << ", \"timeline_windows\": " << observer.timeline_windows << "}\n";
  f << "  ],\n  \"sharded\": [\n";
  f << "    {\"label\": \"" << sharded.label << "\", \"requests\": " << sharded.requests
    << ", \"fleet\": " << sharded.fleet << ", \"threads\": " << sharded.threads
    << ", \"serial_wall_s\": " << sharded.serial_wall_s
    << ", \"serial_requests_per_s\": " << sharded.serial_requests_per_s
    << ", \"serial_completed\": " << sharded.serial_completed
    << ", \"serial_p99_latency_s\": " << sharded.serial_p99_latency_s
    << ", \"serial_goodput_qps\": " << sharded.serial_goodput_qps
    << ",\n     \"points\": [\n";
  for (std::size_t i = 0; i < sharded.points.size(); ++i) {
    const ShardedPoint& p = sharded.points[i];
    f << "       {\"cells\": " << p.cells << ", \"wall_s\": " << p.wall_s
      << ", \"requests_per_s\": " << p.requests_per_s << ", \"speedup\": " << p.speedup
      << ", \"completed\": " << p.completed
      << ", \"p99_latency_s\": " << p.p99_latency_s
      << ", \"goodput_qps\": " << p.goodput_qps << "}"
      << (i + 1 < sharded.points.size() ? "," : "") << "\n";
  }
  f << "     ],\n     \"scale_requests\": " << sharded.scale_requests
    << ", \"scale_cells\": " << sharded.scale_cells
    << ", \"scale_wall_s\": " << sharded.scale_wall_s
    << ", \"scale_requests_per_s\": " << sharded.scale_requests_per_s
    << ", \"scale_completed\": " << sharded.scale_completed
    << ", \"scale_p99_latency_s\": " << sharded.scale_p99_latency_s
    << ", \"scale_goodput_qps\": " << sharded.scale_goodput_qps << "}\n";
  f << "  ],\n  \"event_queue\": [\n";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const QueueBenchResult& q = queues[i];
    f << "    {\"label\": \"" << q.label << "\", \"events\": " << q.events
      << ", \"wall_s\": " << q.wall_s << ", \"ops_per_s\": " << q.ops_per_s
      << ", \"checksum\": " << q.checksum << "}" << (i + 1 < queues.size() ? "," : "")
      << "\n";
  }
  f << "  ],\n  \"headlines\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Headline& h = scenarios[i].headline;
    f << "    {\"fleet_label\": \"" << h.fleet_label << "\", \"requests\": " << h.requests
      << ", \"fleet\": " << h.fleet << ", \"wall_s\": " << h.wall_s
      << ", \"requests_per_s\": " << h.requests_per_s
      << ", \"p99_latency_s\": " << h.p99_latency_s
      << ", \"goodput_qps\": " << h.goodput_qps << "}"
      << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"closed_loop\": [\n";
  {
    const serve::FleetMetrics& m = closed.metrics;
    f << "    {\"label\": \"" << closed.label << "\", \"sessions\": " << m.sessions
      << ", \"requests_per_session\": " << closed.config.requests_per_session
      << ", \"think_time_mean_s\": " << closed.config.think_time_mean_s
      << ", \"completed\": " << m.completed << ", \"wall_s\": " << closed.wall_s
      << ", \"requests_per_s\": " << closed.requests_per_s
      << ", \"throughput_qps\": " << m.throughput_qps
      << ", \"goodput_qps\": " << m.goodput_qps
      << ", \"slo_attainment\": " << m.slo_attainment
      << ", \"p50_latency_s\": " << m.p50_latency_s
      << ", \"p99_latency_s\": " << m.p99_latency_s
      << ", \"mean_session_s\": " << m.mean_session_s
      << ", \"p50_session_s\": " << m.p50_session_s
      << ", \"p99_session_s\": " << m.p99_session_s
      << ", \"max_session_s\": " << m.max_session_s
      << ", \"mean_batch\": " << m.mean_batch_size
      << ", \"estimate_lookups\": " << m.estimate_lookups
      << ", \"estimate_misses\": " << m.estimate_misses << "}\n";
  }
  f << "  ],\n  \"continuous_batching\": [\n";
  f << "    {\"label\": \"" << batching.label << "\", \"requests\": " << batching.requests
    << ", \"fleet\": " << batching.fleet
    << ", \"decode_tokens\": " << batching.decode_tokens
    << ", \"capacity_qps\": " << batching.capacity_qps
    << ", \"wall_s\": " << batching.wall_s
    << ", \"requests_per_s\": " << batching.requests_per_s << ",\n     \"points\": [\n";
  for (std::size_t i = 0; i < batching.points.size(); ++i) {
    const ContinuousBatchingPoint& p = batching.points[i];
    f << "       {\"capacity_x\": " << p.capacity_x
      << ", \"offered_qps\": " << p.offered_qps;
    write_decode_mode_fields(f, "mono", p.mono);
    write_decode_mode_fields(f, "cont", p.cont);
    f << ", \"ttft_ratio\": " << p.ttft_ratio << "}"
      << (i + 1 < batching.points.size() ? "," : "") << "\n";
  }
  f << "     ]}\n";
  f << "  ],\n  \"hybrid_fleet\": [\n";
  f << "    {\"label\": \"" << hybrid.label << "\", \"requests\": " << hybrid.requests
    << ", \"fleet\": " << hybrid.fleet << ", \"capacity_qps\": " << hybrid.capacity_qps
    << ", \"wall_s\": " << hybrid.wall_s
    << ", \"requests_per_s\": " << hybrid.requests_per_s << ",\n     \"points\": [\n";
  for (std::size_t i = 0; i < hybrid.points.size(); ++i) {
    const HybridFleetPoint& p = hybrid.points[i];
    f << "       {\"fleet_label\": \"" << p.fleet_label
      << "\", \"capacity_x\": " << p.capacity_x << ", \"offered_qps\": " << p.offered_qps
      << ", \"completed\": " << p.completed
      << ", \"p99_latency_s\": " << p.p99_latency_s
      << ", \"goodput_qps\": " << p.goodput_qps
      << ", \"slo_attainment\": " << p.slo_attainment
      << ", \"tier0_attainment\": " << p.tier0_attainment
      << ", \"mean_ttft_s\": " << p.mean_ttft_s
      << ", \"tokens_per_s\": " << p.tokens_per_s
      << ", \"energy_per_request_j\": " << p.energy_per_request_j
      << ", \"fleet_cost_usd\": " << p.fleet_cost_usd
      << ", \"cost_per_request_usd\": " << p.cost_per_request_usd << "}"
      << (i + 1 < hybrid.points.size() ? "," : "") << "\n";
  }
  f << "     ]}\n";
  f << "  ],\n  \"overload_faults\": [\n";
  write_indented_campaign(f, overload.config, overload.points);
  f << "\n  ],\n  \"campaigns\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    write_indented_campaign(f, scenarios[i].config, scenarios[i].points);
    f << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return static_cast<bool>(f);
}

// Elastic scenario: the mixed TRON+GHOST catalog with two-tier priorities,
// starting from a deliberately undersized 2-slot fleet under bursty traffic
// sized for 4 slots — the static point saturates, the autoscaling points must
// grow into the load.  One campaign sweeps the policy axis; the headline
// times the queue-depth policy end to end.
ScenarioResult run_elastic_scenario(bool smoke) {
  serve::WorkloadCatalog catalog = serve::WorkloadCatalog::mixed_default();
  catalog.apply_default_tiers();
  const std::vector<std::string> fleet_template{"tron", "ghost"};
  const std::size_t initial_fleet = 2;
  const std::size_t max_batch = 8;
  // Size the load for a 4-slot fleet: ~2x what the initial slots sustain.
  const double capacity4 =
      serve::fleet_capacity_qps(catalog, serve::FleetConfig::cycled(fleet_template, 4),
                                max_batch);

  ScenarioResult out;
  serve::CampaignConfig cfg;
  cfg.name = "TRON+GHOST elastic policy sweep";
  cfg.fleet_template = fleet_template;
  cfg.qps = {0.5 * capacity4, 0.8 * capacity4};
  cfg.schedulers = {serve::SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {initial_fleet};
  cfg.max_batches = {max_batch};
  cfg.autoscalers = {serve::AutoscalerPolicy::kNone, serve::AutoscalerPolicy::kQueueDepth,
                     serve::AutoscalerPolicy::kTargetUtilization};
  cfg.autoscale.max_slots = 6;  // per family: up to 12 slots total
  cfg.process = serve::ArrivalProcess::kBursty;
  cfg.requests_per_point = smoke ? 10000 : 200000;
  cfg.seed = 13;
  out.points = serve::run_campaign(cfg, catalog);
  out.config = cfg;

  serve::Scenario scenario;
  scenario.fleet = serve::FleetConfig::cycled(fleet_template, initial_fleet);
  scenario.catalog = catalog;
  scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = max_batch;
  scenario.sim.autoscaler.policy = serve::AutoscalerPolicy::kQueueDepth;
  scenario.sim.autoscaler.max_slots = 6;
  scenario.traffic.open.offered_qps = 0.8 * capacity4;
  scenario.traffic.open.request_count = smoke ? 50000 : 1000000;
  scenario.traffic.open.process = serve::ArrivalProcess::kBursty;
  scenario.traffic.open.seed = 19;
  const auto t0 = std::chrono::steady_clock::now();
  const serve::FleetMetrics m = serve::simulate(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  out.headline.fleet_label = "TRON+GHOST elastic";
  out.headline.requests = scenario.traffic.open.request_count;
  out.headline.fleet = initial_fleet;
  out.headline.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.headline.requests_per_s =
      static_cast<double>(out.headline.requests) / out.headline.wall_s;
  out.headline.p99_latency_s = m.p99_latency_s;
  out.headline.goodput_qps = m.goodput_qps;
  return out;
}

// Overload + faults scenario: a TRON fleet driven from half to 4x its
// capacity with per-slot fault injection, per-tenant timeouts, and bounded
// retries, comparing no admission control against tier-aware shedding.  The
// catalog is a small tier-0 premium tenant (its own SLO contract) over a
// tier-1 bulk: the bulk "bert" tenant has no timeout (batch work waits
// forever), so under 2x overload the no-admission points honestly collapse —
// every bulk request completes far past the SLO and stays in the attainment
// pool instead of vanishing as a timeout.  The "gpt2" tenant models
// impatient clients (timeout + retries with backoff), exercising the retry
// path under overload.  Tier-shed admission keeps queues bounded, so the
// premium tenant's attainment holds while tier-1 work is refused early.
ScenarioResult run_overload_faults_scenario(bool smoke) {
  serve::WorkloadCatalog catalog;
  catalog.add_transformer("vit-premium", sim::transformer_by_name("vit"), 0.25);
  catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128), 5.0);
  catalog.add_transformer("gpt2/256", sim::transformer_by_name("gpt2", 256), 4.5);
  catalog.set_priority(1, 1);
  catalog.set_priority(2, 1);

  const std::size_t fleet = 4;
  const std::size_t max_batch = 8;
  const serve::FleetConfig fleet_cfg = serve::FleetConfig::cycled({"tron"}, fleet);
  const double capacity = serve::fleet_capacity_qps(catalog, fleet_cfg, max_batch);
  // The tier-1 SLO mirrors the simulator's fallback (slo_scale x slowest
  // batch-1 latency); the premium tenant's contract is 3x that — loose
  // enough that its partial batches (it is ~2.5% of traffic, so its batches
  // dispatch at the deadline, not full) meet it on a healthy fleet, tight
  // enough that an unbounded queue would blow through it.
  const serve::EstimateCache cache("tron", catalog);
  double slowest = 0.0;
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    slowest = std::max(slowest, cache.estimate(w, 1).latency_s);
  }
  const double slo_s = 10.0 * slowest;
  catalog.set_slo(0, 3.0 * slo_s);
  catalog.set_timeout(2, 15.0 * slo_s);  // impatient gpt2 clients

  ScenarioResult out;
  serve::CampaignConfig cfg;
  cfg.name = "TRON overload + faults";
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.5 * capacity, 1.0 * capacity, 2.0 * capacity, 4.0 * capacity};
  cfg.schedulers = {serve::SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {fleet};
  cfg.max_batches = {max_batch};
  cfg.admissions = {serve::AdmissionPolicy::kNone, serve::AdmissionPolicy::kTierShed};
  cfg.fault_mtbfs_s = {50e-3};  // a handful of failures per slot per run
  cfg.faults.mttr_s = 5e-3;
  cfg.retry.max_attempts = 3;
  cfg.requests_per_point = smoke ? 20000 : 100000;
  cfg.seed = 29;
  out.points = serve::run_campaign(cfg, catalog);
  out.config = cfg;

  // Headline: the 2x-overload tier-shed point, timed end to end.
  serve::Scenario scenario;
  scenario.fleet = fleet_cfg;
  scenario.catalog = catalog;
  scenario.scheduler = serve::SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = max_batch;
  scenario.sim.faults = cfg.faults;
  scenario.sim.faults.mtbf_s = cfg.fault_mtbfs_s.front();
  scenario.sim.retry = cfg.retry;
  scenario.sim.admission = cfg.admission;
  scenario.sim.admission.policy = serve::AdmissionPolicy::kTierShed;
  scenario.traffic.open.offered_qps = 2.0 * capacity;
  scenario.traffic.open.request_count = smoke ? 50000 : 500000;
  scenario.traffic.open.seed = 31;
  const auto t0 = std::chrono::steady_clock::now();
  const serve::FleetMetrics m = serve::simulate(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  out.headline.fleet_label = "TRON overload+faults";
  out.headline.requests = scenario.traffic.open.request_count;
  out.headline.fleet = fleet;
  out.headline.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.headline.requests_per_s =
      static_cast<double>(out.headline.requests) / out.headline.wall_s;
  out.headline.p99_latency_s = m.p99_latency_s;
  out.headline.goodput_qps = m.goodput_qps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  std::vector<ScenarioResult> scenarios;
  scenarios.push_back(
      run_scenario("TRON", {"tron"}, serve::WorkloadCatalog::tron_default(), smoke));
  scenarios.push_back(
      run_scenario("GHOST", {"ghost"}, serve::WorkloadCatalog::ghost_default(), smoke));
  scenarios.push_back(run_scenario("TRON+GHOST mixed", {"tron", "ghost"},
                                   serve::WorkloadCatalog::mixed_default(), smoke));
  scenarios.push_back(run_elastic_scenario(smoke));
  const ClosedLoopResult closed = run_closed_loop_scenario(smoke);
  const ScenarioResult overload = run_overload_faults_scenario(smoke);
  const ObserverOverhead observer = run_observer_overhead(smoke);
  const ShardedResult sharded = run_sharded_scenario(smoke);
  const ContinuousBatchingResult batching = run_continuous_batching_scenario(smoke);
  const HybridFleetResult hybrid = run_hybrid_fleet_scenario(smoke);
  const std::vector<QueueBenchResult> queues = run_event_queue_bench(smoke);

  for (const ScenarioResult& s : scenarios) {
    serve::campaign_table(s.points, s.config.name).print(std::cout);
    std::printf("%s headline: %zu requests / %zu accelerators in %.3f s (%.0f req/s, "
                "p99 %.1f us, goodput %.0f QPS)\n\n",
                s.headline.fleet_label.c_str(), s.headline.requests, s.headline.fleet,
                s.headline.wall_s, s.headline.requests_per_s,
                s.headline.p99_latency_s * 1e6, s.headline.goodput_qps);
  }
  closed.metrics.to_table(closed.label).print(std::cout);
  std::printf("%s: %zu sessions x %zu requests in %.3f s (%.0f req/s, "
              "p99 session %.2f ms)\n\n",
              closed.label.c_str(), closed.metrics.sessions,
              closed.config.requests_per_session, closed.wall_s, closed.requests_per_s,
              closed.metrics.p99_session_s * 1e3);
  serve::campaign_table(overload.points, overload.config.name).print(std::cout);
  std::printf("%s headline: %zu requests / %zu accelerators in %.3f s (%.0f req/s, "
              "p99 %.1f us, goodput %.0f QPS)\n\n",
              overload.headline.fleet_label.c_str(), overload.headline.requests,
              overload.headline.fleet, overload.headline.wall_s,
              overload.headline.requests_per_s, overload.headline.p99_latency_s * 1e6,
              overload.headline.goodput_qps);
  std::printf("%s: %zu requests unobserved in %.3f s (%.0f req/s) vs observed "
              "(trace 1/64 + timeline) in %.3f s (%.0f req/s): "
              "overhead %.1f%%, %zu request events, %zu batch spans, %zu windows\n\n",
              observer.label.c_str(), observer.requests, observer.off_wall_s,
              observer.off_requests_per_s, observer.on_wall_s, observer.on_requests_per_s,
              100.0 * observer.overhead_fraction, observer.request_events,
              observer.batch_spans, observer.timeline_windows);
  std::printf("%s: %zu requests / %zu slots, %zu pool thread(s); serial %.3f s "
              "(%.0f req/s)\n",
              sharded.label.c_str(), sharded.requests, sharded.fleet, sharded.threads,
              sharded.serial_wall_s, sharded.serial_requests_per_s);
  for (const ShardedPoint& p : sharded.points) {
    std::printf("  cells=%zu: %.3f s (%.0f req/s, %.2fx serial, p99 %.1f us, "
                "goodput %.0f QPS)\n",
                p.cells, p.wall_s, p.requests_per_s, p.speedup, p.p99_latency_s * 1e6,
                p.goodput_qps);
  }
  std::printf("  scale: %zu requests / %zu cells (hdr percentiles) in %.3f s "
              "(%.0f req/s, p99 %.1f us)\n\n",
              sharded.scale_requests, sharded.scale_cells, sharded.scale_wall_s,
              sharded.scale_requests_per_s, sharded.scale_p99_latency_s * 1e6);
  std::printf("%s: %zu requests, %zu-slot fleet, lognormal decode (median %zu tokens), "
              "capacity %.0f QPS, %.3f s total\n",
              batching.label.c_str(), batching.requests, batching.fleet,
              batching.decode_tokens, batching.capacity_qps, batching.wall_s);
  for (const ContinuousBatchingPoint& p : batching.points) {
    std::printf("  %.1fx capacity: mean TTFT %.1f us (monolithic) -> %.1f us "
                "(continuous, %.2fx better); mean TPOT %.1f -> %.1f us; "
                "tokens/s %.0f -> %.0f\n",
                p.capacity_x, p.mono.mean_ttft_s * 1e6, p.cont.mean_ttft_s * 1e6,
                p.ttft_ratio, p.mono.mean_tpot_s * 1e6, p.cont.mean_tpot_s * 1e6,
                p.mono.tokens_per_s, p.cont.tokens_per_s);
  }
  std::printf("\n");
  std::printf("%s: %zu requests/fleet, %zu slots, hybrid capacity %.0f QPS, %.3f s total\n",
              hybrid.label.c_str(), hybrid.requests, hybrid.fleet, hybrid.capacity_qps,
              hybrid.wall_s);
  for (const HybridFleetPoint& p : hybrid.points) {
    std::printf("  %-17s %.1fx: tier0 %.3f, goodput %.0f QPS, mean TTFT %.1f us, "
                "%.3f uJ/req, $%.3g/req\n",
                p.fleet_label.c_str(), p.capacity_x, p.tier0_attainment, p.goodput_qps,
                p.mean_ttft_s * 1e6, p.energy_per_request_j * 1e6,
                p.cost_per_request_usd);
  }
  std::printf("\n");
  for (const QueueBenchResult& q : queues) {
    std::printf("event_queue %s: %zu hold-model rounds in %.3f s (%.0f ops/s)\n",
                q.label.c_str(), q.events, q.wall_s, q.ops_per_s);
  }
  std::printf("\n");

  if (!write_json(scenarios, closed, overload, observer, sharded, batching, hybrid,
                  queues, out_path, smoke)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
