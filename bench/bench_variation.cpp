// Ablation E (extension): fabrication process-variation study — the open
// challenge named in the paper's conclusion.  Monte-Carlo over dies: trimming
// power distribution and yield as a function of variation magnitude and
// tuning range.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "photonics/variation.hpp"

namespace {

using namespace lumos;
using namespace lumos::phot;

void print_variation_study() {
  Table t("Ablation E: process variation vs trimming power and yield (16-ring bank, 200 dies)");
  t.add_row({"local sigma", "die sigma", "mean corr.", "worst corr.", "mean bank power",
             "p95 bank power", "yield"});
  for (const double local_nm : {0.1, 0.2, 0.4, 0.6}) {
    for (const double die_nm : {0.4, 0.8, 1.6}) {
      ProcessVariationConfig c;
      c.local_sigma_m = local_nm * 1e-9;
      c.die_sigma_m = die_nm * 1e-9;
      const ProcessVariationModel m(c, MicroringDesign{}, TuningCircuitConfig{});
      const VariationReport r = m.run(0xD1E5);
      t.add_row({Table::num(local_nm, 1) + " nm", Table::num(die_nm, 1) + " nm",
                 Table::num(units::to_nm(r.mean_correction_m), 2) + " nm",
                 Table::num(units::to_nm(r.worst_correction_m), 2) + " nm",
                 Table::num(units::to_mw(r.mean_bank_power_w), 2) + " mW",
                 Table::num(units::to_mw(r.p95_bank_power_w), 2) + " mW",
                 Table::num(100.0 * r.yield, 1) + " %"});
    }
  }
  t.print(std::cout);

  Table y("Yield vs available TO tuning range (0.5 nm local / 1.0 nm die sigma)");
  y.add_row({"TO range", "yield", "mean bank power"});
  for (const double range_nm : {1.0, 2.0, 4.0, 8.0, 12.0, 18.0}) {
    ProcessVariationConfig c;
    c.local_sigma_m = 0.5e-9;
    c.die_sigma_m = 1.0e-9;
    TuningCircuitConfig tuning;
    tuning.to_max_shift_nm = range_nm;
    const ProcessVariationModel m(c, MicroringDesign{}, tuning);
    const VariationReport r = m.run(0xD1E5);
    y.add_row({Table::num(range_nm, 1) + " nm", Table::num(100.0 * r.yield, 1) + " %",
               Table::num(units::to_mw(r.mean_bank_power_w), 2) + " mW"});
  }
  y.print(std::cout);
  std::cout << '\n';
}

void BM_VariationMonteCarlo(benchmark::State& state) {
  ProcessVariationConfig c;
  c.monte_carlo_dies = static_cast<std::size_t>(state.range(0));
  const ProcessVariationModel m(c, MicroringDesign{}, TuningCircuitConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.run(1));
  }
}
BENCHMARK(BM_VariationMonteCarlo)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_variation_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
