// Ablation A (DESIGN.md): tuning-circuit policy comparison.
//
// Quantifies the paper's Section V.A design choices: EO-only saturates, TO-
// only burns power and latency, the hybrid takes the best of both, and TED
// cuts the bank-level TO power versus independent per-ring feedback.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "photonics/tuning.hpp"

namespace {

using namespace lumos;
using namespace lumos::phot;

void print_policy_table() {
  const MicroringResonator ring{MicroringDesign{}};
  const TuningCircuit circuit({}, ring);
  Table t("Ablation A1: per-ring tuning policy (energy/power/latency per shift)");
  t.add_row({"shift", "policy", "achieved", "dyn energy", "hold power", "latency", "saturated"});
  for (const double shift_nm : {0.01, 0.05, 0.2, 1.0, 5.0}) {
    for (const auto& [policy, name] :
         {std::pair{TuningPolicy::kEoOnly, "EO-only"},
          std::pair{TuningPolicy::kToOnly, "TO-only"},
          std::pair{TuningPolicy::kHybrid, "hybrid"}}) {
      const TuningResult r = circuit.tune(units::nm(shift_nm), policy);
      t.add_row({Table::num(shift_nm, 3) + " nm", name,
                 Table::num(units::to_nm(r.achieved_shift_m), 4) + " nm",
                 Table::num(units::to_fj(r.dynamic_energy_j), 1) + " fJ",
                 Table::num(units::to_mw(r.static_power_w), 4) + " mW",
                 Table::num(units::to_ns(r.latency_s), 2) + " ns",
                 r.saturated ? "yes" : "no"});
    }
  }
  t.print(std::cout);
}

void print_ted_table() {
  const MicroringResonator ring{MicroringDesign{}};
  Table t("Ablation A2: bank-level TO power, naive per-ring feedback vs TED");
  t.add_row({"rings", "pitch", "naive", "TED", "saving", "naive err", "TED err"});
  for (const std::size_t rings : {8u, 16u, 32u}) {
    for (const double pitch_um : {15.0, 25.0, 40.0}) {
      const ThermalBank bank({rings, pitch_um * 1e-6, 1.2e4, 35e-6});
      std::vector<double> shifts(rings);
      for (std::size_t i = 0; i < rings; ++i) {
        shifts[i] = units::nm(0.05 + 0.01 * static_cast<double>(i % 7));
      }
      const BankTuningPower p = bank_tuning_power(bank, shifts, {}, ring);
      t.add_row({std::to_string(rings), Table::num(pitch_um, 0) + " um",
                 Table::num(units::to_mw(p.naive_w), 2) + " mW",
                 Table::num(units::to_mw(p.ted_w), 2) + " mW",
                 Table::num(100.0 * (1.0 - p.ted_w / p.naive_w), 1) + " %",
                 Table::num(p.max_error_naive_k, 3) + " K",
                 Table::num(p.max_error_ted_k, 3) + " K"});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

void BM_TedSolve(benchmark::State& state) {
  const auto rings = static_cast<std::size_t>(state.range(0));
  const ThermalBank bank({rings, 20e-6, 1.2e4, 35e-6});
  std::vector<double> target(rings);
  for (std::size_t i = 0; i < rings; ++i) target[i] = 1.0 + static_cast<double>(i % 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.ted_powers(target));
  }
}
BENCHMARK(BM_TedSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_JacobiEigendecomposition(benchmark::State& state) {
  const auto rings = static_cast<std::size_t>(state.range(0));
  const ThermalBank bank({rings, 20e-6, 1.2e4, 35e-6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(jacobi_eigendecomposition(bank.coupling()));
  }
}
BENCHMARK(BM_JacobiEigendecomposition)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_policy_table();
  print_ted_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
