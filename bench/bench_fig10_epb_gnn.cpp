// Reproduces paper Fig. 10: "EPB comparison across GNN accelerators".
//
// Prints the model x dataset x platform EPB grid (GHOST first) and the
// improvement factors backing the ">= 3.8x greater energy efficiency" claim.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace {

using namespace lumos;

void print_figure() {
  const sim::FigureData f = sim::run_fig10_epb_gnn(arch::GhostAdapter(ghost::default_ghost_config()));
  f.to_table().print(std::cout);

  Table gains("GHOST EPB improvement factors (baseline EPB / GHOST EPB)");
  std::vector<std::string> header{"workload"};
  for (std::size_t p = 1; p < f.platforms.size(); ++p) header.push_back(f.platforms[p]);
  gains.add_row(std::move(header));
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    std::vector<std::string> row{f.workloads[w]};
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      row.push_back(Table::num(f.improvement(w, p), 1) + "x");
    }
    gains.add_row(std::move(row));
  }
  gains.print(std::cout);
  std::cout << "Fig. 10 minimum EPB improvement: " << Table::num(f.min_improvement(), 2)
            << "x (paper claims >= 3.8x)\n"
            << "Fig. 10 geomean EPB improvement: " << Table::num(f.mean_improvement(), 2)
            << "x\n\n";
}

void BM_Fig10FullGrid(benchmark::State& state) {
  const arch::GhostAdapter acc(ghost::default_ghost_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fig10_epb_gnn(acc));
  }
}
BENCHMARK(BM_Fig10FullGrid)->Unit(benchmark::kMillisecond);

void BM_GhostEstimateGcnCora(benchmark::State& state) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_cora();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.estimate(model, ds));
  }
}
BENCHMARK(BM_GhostEstimateGcnCora)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
