// Tests for heterodyne and homodyne crosstalk models (paper Section V.B and
// Fig. 3d).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include <cmath>

#include "photonics/crosstalk.hpp"

namespace lumos::phot {
namespace {

HeterodyneConfig hconfig(double spacing_nm, double q, std::size_t channels) {
  HeterodyneConfig c;
  c.channel_spacing_m = spacing_nm * 1e-9;
  c.quality_factor = q;
  c.channel_count = channels;
  return c;
}

TEST(Heterodyne, CouplingPeaksAtZeroDetuning) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 16));
  EXPECT_DOUBLE_EQ(m.coupling_at(0.0), 1.0);
  EXPECT_LT(m.coupling_at(0.4e-9), 1.0);
}

TEST(Heterodyne, CouplingDecaysMonotonically) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 16));
  double prev = 1.0;
  for (double d = 0.1e-9; d < 3e-9; d += 0.1e-9) {
    const double c = m.coupling_at(d);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(Heterodyne, CentreChannelSuffersMost) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 17));
  const double centre = m.crosstalk_fraction(8);
  const double edge = m.crosstalk_fraction(0);
  EXPECT_GT(centre, edge);
}

TEST(Heterodyne, WiderSpacingReducesCrosstalk) {
  const double tight = HeterodyneCrosstalkModel(hconfig(0.4, 8000, 16))
                           .analyze().worst_crosstalk_fraction;
  const double loose = HeterodyneCrosstalkModel(hconfig(1.2, 8000, 16))
                           .analyze().worst_crosstalk_fraction;
  EXPECT_GT(tight, loose);
}

TEST(Heterodyne, HigherQReducesCrosstalk) {
  const double low_q = HeterodyneCrosstalkModel(hconfig(0.8, 4000, 16))
                           .analyze().worst_crosstalk_fraction;
  const double high_q = HeterodyneCrosstalkModel(hconfig(0.8, 16000, 16))
                            .analyze().worst_crosstalk_fraction;
  EXPECT_GT(low_q, high_q);
}

TEST(Heterodyne, MoreChannelsIncreaseCrosstalk) {
  const double few = HeterodyneCrosstalkModel(hconfig(0.8, 8000, 4))
                         .analyze().worst_crosstalk_fraction;
  const double many = HeterodyneCrosstalkModel(hconfig(0.8, 8000, 32))
                          .analyze().worst_crosstalk_fraction;
  EXPECT_GT(many, few);
}

TEST(Heterodyne, SingleChannelHasNoCrosstalk) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 1));
  EXPECT_DOUBLE_EQ(m.crosstalk_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(m.analyze().worst_crosstalk_fraction, 0.0);
}

TEST(Heterodyne, OscrConsistentWithFraction) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 16));
  const HeterodyneReport r = m.analyze();
  EXPECT_NEAR(r.worst_oscr_db, 10.0 * std::log10(1.0 / r.worst_crosstalk_fraction), 1e-9);
}

TEST(Heterodyne, PerturbAddsLeakedAggressorPower) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 16));
  const double clean = 0.5;
  const double perturbed = m.perturb(clean, 0.5, 8);
  EXPECT_GT(perturbed, clean);
  EXPECT_NEAR(perturbed, clean + m.crosstalk_fraction(8) * 0.5, 1e-12);
}

TEST(Heterodyne, VictimIndexValidated) {
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, 8));
  EXPECT_THROW((void)m.crosstalk_fraction(8), lumos::InvalidArgument);
}

TEST(Homodyne, LeakageDecaysWithGap) {
  HomodyneConfig tight;
  tight.coupling_gap_m = 150e-9;
  HomodyneConfig loose;
  loose.coupling_gap_m = 350e-9;
  EXPECT_GT(HomodyneCrosstalkModel(tight).leakage_fraction(),
            HomodyneCrosstalkModel(loose).leakage_fraction());
}

TEST(Homodyne, ReferenceGapGivesReferenceLeakage) {
  HomodyneConfig c;
  c.coupling_gap_m = c.reference_gap_m;
  EXPECT_NEAR(HomodyneCrosstalkModel(c).leakage_fraction(), c.reference_leakage, 1e-12);
}

TEST(Homodyne, WorstCaseErrorGrowsWithSources) {
  HomodyneConfig few;
  few.interfering_elements = 2;
  HomodyneConfig many;
  many.interfering_elements = 8;
  EXPECT_LT(HomodyneCrosstalkModel(few).worst_case_relative_error(),
            HomodyneCrosstalkModel(many).worst_case_relative_error());
}

TEST(Homodyne, OscrImprovesWithGap) {
  HomodyneConfig tight;
  tight.coupling_gap_m = 150e-9;
  HomodyneConfig loose;
  loose.coupling_gap_m = 400e-9;
  EXPECT_LT(HomodyneCrosstalkModel(tight).worst_oscr_db(),
            HomodyneCrosstalkModel(loose).worst_oscr_db());
}

TEST(Homodyne, LeakageCappedAtHalf) {
  HomodyneConfig c;
  c.coupling_gap_m = 1e-9;  // absurdly tight
  c.reference_leakage = 0.4;
  EXPECT_LE(HomodyneCrosstalkModel(c).leakage_fraction(), 0.5);
}

TEST(Homodyne, InvalidConfigRejected) {
  HomodyneConfig c;
  c.reference_leakage = 1.5;
  EXPECT_THROW(HomodyneCrosstalkModel{c}, lumos::InvalidArgument);
}

// Property sweep over channel counts: crosstalk fraction bounded and
// monotone in count for fixed spacing.
class ChannelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSweep, BoundedAndOrdered) {
  const std::size_t n = GetParam();
  const HeterodyneCrosstalkModel m(hconfig(0.8, 8000, n));
  const HeterodyneReport r = m.analyze();
  EXPECT_GE(r.worst_crosstalk_fraction, 0.0);
  EXPECT_LT(r.worst_crosstalk_fraction, 1.0);
  EXPECT_LE(r.best_crosstalk_fraction, r.worst_crosstalk_fraction);
}

INSTANTIATE_TEST_SUITE_P(Counts, ChannelSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{8},
                                           std::size_t{16}, std::size_t{32},
                                           std::size_t{64}));

}  // namespace
}  // namespace lumos::phot
