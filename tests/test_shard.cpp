// Tests for cell-sharded simulation (serve/shard.hpp), the metrics merge
// (FleetMetrics::merge), the event-queue containers (serve/event_heap.hpp),
// and the batch-buffer arena (serve/arena.hpp).  The load-bearing contracts:
//
//   * cells == 1 is bit-identical to the serial simulator;
//   * for fixed K, simulate_sharded equals the serial ascending fold of the
//     plan's cells — independent of LUMOS_THREADS (CI runs 1 and 4);
//   * FleetMetrics::merge is pairwise commutative, and with retained latency
//     state its percentiles are exact over the union multiset;
//   * CalendarQueue pops the same total order EventHeap does;
//   * RequestArena never hands out a buffer that is still live.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "serve/arena.hpp"
#include "serve/event_heap.hpp"
#include "serve/shard.hpp"

namespace lumos::serve {
namespace {

Scenario open_loop_scenario(std::size_t fleet_size, std::size_t requests) {
  Scenario s;
  s.fleet = FleetConfig::homogeneous("tron", fleet_size);
  s.catalog = WorkloadCatalog::tron_default();
  s.batch.max_batch = 8;
  s.traffic.open.offered_qps = 60000.0;
  s.traffic.open.request_count = requests;
  s.traffic.open.seed = 11;
  return s;
}

// The robustness kitchen sink: faults, timeouts, retries, and admission all
// enabled so the sharded parity below exercises every event source.
Scenario faulted_scenario(std::size_t fleet_size, std::size_t requests) {
  Scenario s = open_loop_scenario(fleet_size, requests);
  s.traffic.open.offered_qps = 120000.0;  // saturated: sheds and timeouts
  s.catalog.apply_timeout(5e-3);
  s.sim.faults.mtbf_s = 0.02;
  s.sim.faults.mttr_s = 0.005;
  s.sim.faults.seed = 7;
  s.sim.retry.max_attempts = 3;
  s.sim.retry.base_backoff_s = 1e-4;
  s.sim.admission.policy = AdmissionPolicy::kQueueCap;
  s.sim.admission.queue_cap = 256;
  return s;
}

void expect_bit_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.within_slo, b.within_slo);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.timed_out_requests, b.timed_out_requests);
  EXPECT_EQ(a.attempt_timeouts, b.attempt_timeouts);
  EXPECT_EQ(a.retried_attempts, b.retried_attempts);
  EXPECT_EQ(a.failed_batches, b.failed_batches);
  EXPECT_EQ(a.requeued_requests, b.requeued_requests);
  EXPECT_EQ(a.slot_failures, b.slot_failures);
  EXPECT_EQ(a.slot_recoveries, b.slot_recoveries);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.offered_qps, b.offered_qps);
  EXPECT_EQ(a.throughput_qps, b.throughput_qps);
  EXPECT_EQ(a.goodput_qps, b.goodput_qps);
  EXPECT_EQ(a.slo_attainment, b.slo_attainment);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  EXPECT_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.energy_per_request_j, b.energy_per_request_j);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  EXPECT_EQ(a.fleet_availability, b.fleet_availability);
  EXPECT_EQ(a.observed_mttr_s, b.observed_mttr_s);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.mean_fleet_size, b.mean_fleet_size);
  EXPECT_EQ(a.batch_histogram, b.batch_histogram);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t w = 0; w < a.tenants.size(); ++w) {
    EXPECT_EQ(a.tenants[w].completed, b.tenants[w].completed);
    EXPECT_EQ(a.tenants[w].within_slo, b.tenants[w].within_slo);
    EXPECT_EQ(a.tenants[w].shed, b.tenants[w].shed);
    EXPECT_EQ(a.tenants[w].timed_out, b.tenants[w].timed_out);
    EXPECT_EQ(a.tenants[w].mean_latency_s, b.tenants[w].mean_latency_s);
    EXPECT_EQ(a.tenants[w].p50_latency_s, b.tenants[w].p50_latency_s);
    EXPECT_EQ(a.tenants[w].p99_latency_s, b.tenants[w].p99_latency_s);
    EXPECT_EQ(a.tenants[w].max_latency_s, b.tenants[w].max_latency_s);
    EXPECT_EQ(a.tenants[w].goodput_qps, b.tenants[w].goodput_qps);
  }
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.mean_session_s, b.mean_session_s);
  EXPECT_EQ(a.p50_session_s, b.p50_session_s);
  EXPECT_EQ(a.p99_session_s, b.p99_session_s);
  EXPECT_EQ(a.max_session_s, b.max_session_s);
}

// ---------------------------------------------------------------------------
// Sharded parity contracts
// ---------------------------------------------------------------------------

TEST(Shard, CellsOneIsBitIdenticalToSerial) {
  const Scenario s = open_loop_scenario(8, 20000);
  expect_bit_identical(simulate(s), simulate_sharded(s, 1));
}

TEST(Shard, CellsOneWithFaultsIsBitIdenticalToSerial) {
  const Scenario s = faulted_scenario(4, 10000);
  expect_bit_identical(simulate(s), simulate_sharded(s, 1));
}

// The thread-independence contract: simulate_sharded must equal the serial
// ascending fold of its own plan's cells, whatever LUMOS_THREADS is (the CI
// matrix runs this suite under 1 and 4 threads).  Faults + retries +
// admission on so every event source crosses the shard boundary machinery.
TEST(Shard, ShardedEqualsSerialCellFoldUnderAnyThreadCount) {
  const Scenario s = faulted_scenario(8, 20000);
  const CellPlan plan = CellPlan::build(s, 4);
  ASSERT_EQ(plan.cells.size(), 4u);
  FleetMetrics folded = simulate(plan.cells[0]);
  for (std::size_t c = 1; c < plan.cells.size(); ++c) {
    folded.merge(simulate(plan.cells[c]));
  }
  folded.latency_state.reset();
  expect_bit_identical(folded, simulate_sharded(s, 4));
}

TEST(Shard, ShardedClosedLoopRunsEverySession) {
  Scenario s;
  s.fleet = FleetConfig::homogeneous("tron", 4);
  s.catalog = WorkloadCatalog::tron_default();
  s.traffic.mode = LoopMode::kClosed;
  s.traffic.closed.sessions = 10;  // unequal split: 3+3+2+2
  s.traffic.closed.requests_per_session = 16;
  const FleetMetrics m = simulate_sharded(s, 4);
  EXPECT_EQ(m.sessions, 10u);
  EXPECT_EQ(m.completed, 10u * 16u);
  EXPECT_GT(m.p99_session_s, 0.0);
}

TEST(Shard, CellSlicesPartitionFleetAndTraffic) {
  Scenario s = open_loop_scenario(6, 9001);
  const CellPlan plan = CellPlan::build(s, 4);  // slots 2+2+1+1
  ASSERT_EQ(plan.cells.size(), 4u);
  std::size_t slots = 0;
  std::size_t requests = 0;
  double qps = 0.0;
  for (const Scenario& cell : plan.cells) {
    slots += cell.fleet.accelerators.size();
    requests += cell.traffic.open.request_count;
    qps += cell.traffic.open.offered_qps;
    EXPECT_TRUE(cell.sim.keep_latency_state);
    EXPECT_NE(cell.traffic.open.seed, s.traffic.open.seed);
  }
  EXPECT_EQ(slots, 6u);
  EXPECT_EQ(requests, 9001u);
  EXPECT_NEAR(qps, s.traffic.open.offered_qps, 1e-9);
  // Distinct cells, distinct streams.
  EXPECT_NE(plan.cells[0].traffic.open.seed, plan.cells[1].traffic.open.seed);
  EXPECT_NE(plan.cells[0].sim.faults.seed, plan.cells[1].sim.faults.seed);
}

TEST(Shard, BuildRejectsBadPlans) {
  const Scenario s = open_loop_scenario(4, 1000);
  EXPECT_THROW(CellPlan::build(s, 0), InvalidArgument);
  EXPECT_THROW(CellPlan::build(s, 5), InvalidArgument);  // more cells than slots

  Scenario observed = s;
  observed.observe.trace.enabled = true;
  EXPECT_THROW(CellPlan::build(observed, 2), InvalidArgument);
  EXPECT_NO_THROW(CellPlan::build(observed, 1));  // serial observed runs stay legal

  Scenario closed = s;
  closed.traffic.mode = LoopMode::kClosed;
  closed.traffic.closed.sessions = 2;
  EXPECT_THROW(CellPlan::build(closed, 3), InvalidArgument);  // a cell would be empty

  Scenario traced = s;
  traced.trace = {{0, 0.0, 0}, {1, 1e-5, 0}};
  EXPECT_THROW(CellPlan::build(traced, 3), InvalidArgument);
}

TEST(Shard, ExplicitTraceDealsRoundRobin) {
  Scenario s = open_loop_scenario(4, 1000);
  for (std::size_t i = 0; i < 10; ++i) {
    s.trace.push_back({i, static_cast<double>(i) * 1e-5, 0});
  }
  const CellPlan plan = CellPlan::build(s, 4);
  ASSERT_EQ(plan.cells[0].trace.size(), 3u);  // 0, 4, 8
  EXPECT_EQ(plan.cells[0].trace[1].id, 4u);
  ASSERT_EQ(plan.cells[3].trace.size(), 2u);  // 3, 7
  EXPECT_EQ(plan.cells[3].trace[0].id, 3u);
  // Each slice stays arrival-ordered.
  for (const Scenario& cell : plan.cells) {
    EXPECT_TRUE(std::is_sorted(
        cell.trace.begin(), cell.trace.end(),
        [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; }));
  }
}

// ---------------------------------------------------------------------------
// FleetMetrics::merge
// ---------------------------------------------------------------------------

// Counters commute exactly; derived weighted means commute only to ULP
// tolerance (FMA contraction of a*wa + b*wb is order-sensitive).  The
// sharded fold never relies on commutativity — it merges in fixed ascending
// cell order — this pins that neither direction loses or double-counts.
TEST(MetricsMerge, PairwiseCommutative) {
  Scenario sa = open_loop_scenario(4, 8000);
  sa.sim.keep_latency_state = true;
  Scenario sb = open_loop_scenario(4, 6000);
  sb.traffic.open.seed = 77;
  sb.sim.keep_latency_state = true;
  const FleetMetrics a = simulate(sa);
  const FleetMetrics b = simulate(sb);
  FleetMetrics ab = a;
  ab.merge(b);
  FleetMetrics ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.completed, ba.completed);
  EXPECT_EQ(ab.within_slo, ba.within_slo);
  EXPECT_DOUBLE_EQ(ab.mean_latency_s, ba.mean_latency_s);
  // Exact-state percentiles recompute over the union multiset: bit-equal.
  EXPECT_EQ(ab.p50_latency_s, ba.p50_latency_s);
  EXPECT_EQ(ab.p99_latency_s, ba.p99_latency_s);
  EXPECT_EQ(ab.p999_latency_s, ba.p999_latency_s);
  EXPECT_EQ(ab.max_latency_s, ba.max_latency_s);
  EXPECT_EQ(ab.duration_s, ba.duration_s);
  EXPECT_DOUBLE_EQ(ab.throughput_qps, ba.throughput_qps);
  EXPECT_DOUBLE_EQ(ab.mean_queue_depth, ba.mean_queue_depth);
  EXPECT_DOUBLE_EQ(ab.fleet_energy_j, ba.fleet_energy_j);
  for (std::size_t w = 0; w < ab.tenants.size(); ++w) {
    EXPECT_EQ(ab.tenants[w].p99_latency_s, ba.tenants[w].p99_latency_s);
    EXPECT_DOUBLE_EQ(ab.tenants[w].mean_latency_s, ba.tenants[w].mean_latency_s);
  }
}

TEST(MetricsMerge, ExactStatePercentilesMatchUnionMultiset) {
  Scenario sa = open_loop_scenario(4, 5000);
  sa.sim.keep_latency_state = true;
  Scenario sb = open_loop_scenario(4, 7000);
  sb.traffic.open.seed = 99;
  sb.sim.keep_latency_state = true;
  const FleetMetrics a = simulate(sa);
  const FleetMetrics b = simulate(sb);
  ASSERT_TRUE(a.latency_state != nullptr && !a.latency_state->hdr);

  // Manual union of every tenant sample from both runs.
  std::vector<double> all;
  for (const FleetMetrics* m : {&a, &b}) {
    for (const std::vector<double>& samples : m->latency_state->tenant_samples) {
      all.insert(all.end(), samples.begin(), samples.end());
    }
  }
  ASSERT_EQ(all.size(), a.completed + b.completed);

  FleetMetrics merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.p50_latency_s, percentile(all, 0.50));
  EXPECT_EQ(merged.p99_latency_s, percentile(all, 0.99));
  EXPECT_EQ(merged.p999_latency_s, percentile(all, 0.999));
  EXPECT_EQ(merged.max_latency_s, std::max(a.max_latency_s, b.max_latency_s));
  // The merged state survived (both sides carried one), so a further merge
  // stays exact.
  EXPECT_TRUE(merged.latency_state != nullptr);
}

TEST(MetricsMerge, HdrStatesMergeAndMismatchesThrow) {
  Scenario sa = open_loop_scenario(4, 5000);
  sa.sim.percentile_mode = PercentileMode::kHdr;
  sa.sim.keep_latency_state = true;
  Scenario sb = sa;
  sb.traffic.open.seed = 123;
  const FleetMetrics a = simulate(sa);
  FleetMetrics b = simulate(sb);
  FleetMetrics merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.completed, a.completed + b.completed);
  EXPECT_GT(merged.p99_latency_s, 0.0);

  // Mixing exact and hdr states is a config error, not a silent average.
  Scenario sc = open_loop_scenario(4, 5000);
  sc.sim.keep_latency_state = true;
  const FleetMetrics c = simulate(sc);
  FleetMetrics bad = a;
  EXPECT_THROW(bad.merge(c), InvalidArgument);

  // Mismatched sketch resolutions throw too (HdrHistogram::merge contract).
  Scenario sd = sa;
  sd.sim.hdr_relative_error = 0.05;
  const FleetMetrics d = simulate(sd);
  FleetMetrics bad2 = a;
  EXPECT_THROW(bad2.merge(d), InvalidArgument);
}

TEST(MetricsMerge, MismatchedCatalogsThrow) {
  Scenario sa = open_loop_scenario(4, 2000);
  const FleetMetrics a = simulate(sa);
  FleetMetrics b = a;
  b.tenants.pop_back();
  FleetMetrics m = a;
  EXPECT_THROW(m.merge(b), InvalidArgument);
}

TEST(MetricsMerge, StatelessFallbackIsCompletedWeighted) {
  Scenario sa = open_loop_scenario(4, 4000);
  Scenario sb = open_loop_scenario(4, 2000);
  sb.traffic.open.seed = 5;
  const FleetMetrics a = simulate(sa);
  const FleetMetrics b = simulate(sb);
  FleetMetrics merged = a;
  merged.merge(b);
  const double na = static_cast<double>(a.completed);
  const double nb = static_cast<double>(b.completed);
  EXPECT_DOUBLE_EQ(merged.p99_latency_s,
                   (a.p99_latency_s * na + b.p99_latency_s * nb) / (na + nb));
  EXPECT_EQ(merged.latency_state, nullptr);
}

// ---------------------------------------------------------------------------
// Event-queue containers
// ---------------------------------------------------------------------------

struct Ev {
  double time_s = 0.0;
  std::uint64_t seq = 0;
};
struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

TEST(EventQueues, CalendarQueuePopsEventHeapOrder) {
  // Clustered times (equal-time ties included) across a span much wider than
  // the calendar, forcing wraps, day-walks, the sparse fallback, and a
  // rehash; interleaved pops exercise cursor resets from mid-queue state.
  Rng rng(42);
  EventHeap<Ev, EvLater> heap;
  CalendarQueue<Ev, EvLater> cal(/*bucket_width_s=*/0.01, /*bucket_count=*/8);
  std::uint64_t seq = 0;
  std::vector<double> drained_heap;
  std::vector<double> drained_cal;
  const auto push_both = [&](double t) {
    heap.push({t, seq});
    cal.push({t, seq});
    ++seq;
  };
  for (std::size_t round = 0; round < 50; ++round) {
    const std::size_t burst = 1 + rng.next_below(40);
    const double base = rng.uniform(0.0, 50.0);
    for (std::size_t i = 0; i < burst; ++i) {
      // Quantised offsets manufacture equal-time collisions.
      push_both(base + 1e-3 * static_cast<double>(rng.next_below(5)));
    }
    const std::size_t pops = rng.next_below(burst + 4);
    for (std::size_t i = 0; i < pops && !heap.empty(); ++i) {
      ASSERT_EQ(heap.next_time_s(), cal.next_time_s());
      const Ev a = heap.pop();
      const Ev c = cal.pop();
      ASSERT_EQ(a.time_s, c.time_s);
      ASSERT_EQ(a.seq, c.seq);  // total order: identical event, not just time
      drained_heap.push_back(a.time_s);
      drained_cal.push_back(c.time_s);
    }
  }
  while (!heap.empty()) {
    const Ev a = heap.pop();
    const Ev c = cal.pop();
    ASSERT_EQ(a.seq, c.seq);
  }
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.next_time_s(), kNever);
  EXPECT_EQ(heap.next_time_s(), kNever);
  EXPECT_EQ(drained_heap, drained_cal);
}

TEST(EventQueues, EventHeapIsStableTotalOrderAtEqualTimes) {
  EventHeap<Ev, EvLater> heap;
  for (std::uint64_t s : {5u, 1u, 3u, 0u, 4u, 2u}) heap.push({1.0, s});
  for (std::uint64_t expect = 0; expect < 6; ++expect) {
    EXPECT_EQ(heap.pop().seq, expect);
  }
}

// ---------------------------------------------------------------------------
// RequestArena
// ---------------------------------------------------------------------------

TEST(Arena, ReusesBuffersWithoutAliasingLiveOnes) {
  RequestArena arena;
  Rng rng(7);
  // Live buffers tagged with their identity; the arena must never hand a
  // still-live buffer out again (data() pointers of live buffers stay
  // distinct) and released capacity must actually be reused.
  std::vector<std::vector<Request>> live;
  for (std::size_t round = 0; round < 2000; ++round) {
    if (live.empty() || rng.next_below(2) == 0) {
      std::vector<Request> b = arena.acquire();
      ASSERT_TRUE(b.empty());  // released buffers come back cleared
      const std::size_t n = 1 + rng.next_below(8);
      for (std::size_t i = 0; i < n; ++i) {
        Request r;
        r.id = (static_cast<std::uint64_t>(round) << 8) | i;
        b.push_back(r);
      }
      for (const std::vector<Request>& other : live) {
        ASSERT_NE(b.data(), other.data());
      }
      live.push_back(std::move(b));
    } else {
      const std::size_t pick = rng.next_below(live.size());
      // Verify the buffer still holds exactly what was written (no aliasing
      // corrupted it), then hand it back.
      for (std::size_t i = 1; i < live[pick].size(); ++i) {
        ASSERT_EQ(live[pick][i].id, live[pick][0].id + i);
      }
      arena.release(std::move(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(arena.outstanding(), live.size());
  }
  EXPECT_LT(arena.allocations(), arena.acquires());  // reuse actually happened
  while (!live.empty()) {
    arena.release(std::move(live.back()));
    live.pop_back();
  }
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_THROW(arena.release({}), InvalidArgument);
}

// Requeue/retry churn in a real run: fault-aborted batches and retries cycle
// buffers through the arena, and a live batch is never recycled — if it were,
// completions would double-count or lose requests and the terminal-count
// invariant (completed + shed + timed out == issued) would break.
TEST(Arena, FaultRetryChurnPreservesTerminalAccounting) {
  const Scenario s = faulted_scenario(4, 15000);
  const FleetMetrics m = simulate(s);
  EXPECT_GT(m.requeued_requests, 0u);   // fault-aborts exercised the release path
  EXPECT_GT(m.retried_attempts, 0u);    // retry heap exercised it too
  EXPECT_EQ(m.completed + m.shed_requests + m.timed_out_requests, 15000u);
}

}  // namespace
}  // namespace lumos::serve
