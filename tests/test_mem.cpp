// Tests for the CACTI-like SRAM/DRAM models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mem/sram.hpp"

namespace lumos::mem {
namespace {

TEST(Sram, EnergyGrowsWithCapacity) {
  SramConfig small{4 * 1024, 8, 1, 32.0};
  SramConfig big{2 * 1024 * 1024, 8, 1, 32.0};
  EXPECT_LT(SramModel(small).read_energy_j(), SramModel(big).read_energy_j());
}

TEST(Sram, LatencyGrowsWithCapacity) {
  SramConfig small{4 * 1024, 8, 1, 32.0};
  SramConfig big{2 * 1024 * 1024, 8, 1, 32.0};
  EXPECT_LT(SramModel(small).access_latency_s(), SramModel(big).access_latency_s());
}

TEST(Sram, BankingReducesLatencyAndEnergy) {
  SramConfig mono{1024 * 1024, 8, 1, 32.0};
  SramConfig banked{1024 * 1024, 8, 16, 32.0};
  EXPECT_GT(SramModel(mono).access_latency_s(), SramModel(banked).access_latency_s());
  EXPECT_GT(SramModel(mono).read_energy_j(), SramModel(banked).read_energy_j());
}

TEST(Sram, CalibrationAnchorsWithinTolerance) {
  // CACTI 7-ish anchors at 32 nm (DESIGN.md): checked to +-50% — the model is
  // a scaling law, not a layout tool.
  const SramModel k32({32 * 1024, 64, 1, 32.0});
  EXPECT_GT(k32.read_energy_j(), 4e-12);
  EXPECT_LT(k32.read_energy_j(), 80e-12);
  EXPECT_GT(k32.access_latency_s(), 0.2e-9);
  EXPECT_LT(k32.access_latency_s(), 1.5e-9);
}

TEST(Sram, WritesCostMoreThanReads) {
  const SramModel m({64 * 1024, 8, 1, 32.0});
  EXPECT_GT(m.write_energy_j(), m.read_energy_j());
}

TEST(Sram, LeakageLinearInCapacity) {
  const SramModel a({256 * 1024, 8, 1, 32.0});
  const SramModel b({512 * 1024, 8, 1, 32.0});
  EXPECT_NEAR(b.leakage_power_w(), 2.0 * a.leakage_power_w(), 1e-9);
}

TEST(Sram, TechnologyScaling) {
  const SramModel n32({64 * 1024, 8, 1, 32.0});
  const SramModel n16({64 * 1024, 8, 1, 16.0});
  EXPECT_NEAR(n16.read_energy_j(), 0.25 * n32.read_energy_j(), 1e-15);
  EXPECT_NEAR(n16.access_latency_s(), 0.5 * n32.access_latency_s(), 1e-12);
}

TEST(Sram, PeakBandwidthConsistent) {
  const SramModel m({64 * 1024, 16, 4, 32.0});
  EXPECT_NEAR(m.peak_bandwidth_bytes_per_s(), 64.0 / m.access_latency_s(), 1e-3);
}

TEST(Sram, TinyCapacityRejected) {
  EXPECT_THROW(SramModel({32, 8, 1, 32.0}), lumos::InvalidArgument);
}

TEST(Dram, EnergyPerBitApplied) {
  const DramModel d(DramConfig{});
  EXPECT_NEAR(d.transfer_energy_j(1), d.config().energy_per_bit_j * 8.0, 1e-18);
  EXPECT_NEAR(d.transfer_energy_j(1000), 1000.0 * d.transfer_energy_j(1), 1e-15);
}

TEST(Dram, LatencyHasFixedPlusStreaming) {
  const DramModel d(DramConfig{});
  const double small = d.transfer_latency_s(64);
  const double large = d.transfer_latency_s(1024 * 1024 * 256);
  EXPECT_GT(small, d.config().access_latency_s - 1e-12);
  EXPECT_GT(large, 100.0 * small);  // streaming term dominates
}

TEST(Buffer, StatsAccumulate) {
  Buffer buf({64 * 1024, 8, 2, 32.0});
  const double t1 = buf.record_reads(10);
  const double t2 = buf.record_writes(4);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, 0.0);
  EXPECT_EQ(buf.stats().reads, 10u);
  EXPECT_EQ(buf.stats().writes, 4u);
  EXPECT_NEAR(buf.stats().energy_j,
              10.0 * buf.model().read_energy_j() + 4.0 * buf.model().write_energy_j(), 1e-15);
  buf.reset_stats();
  EXPECT_EQ(buf.stats().reads, 0u);
}

TEST(Buffer, BankParallelismSpeedsAccessBursts) {
  Buffer mono({64 * 1024, 8, 1, 32.0});
  Buffer banked({64 * 1024, 8, 8, 32.0});
  EXPECT_GT(mono.record_reads(64), banked.record_reads(64));
}

TEST(AccessStats, MergeSums) {
  AccessStats a{10, 5, 1e-9, 2e-9};
  const AccessStats b{3, 2, 1e-10, 1e-10};
  a.merge(b);
  EXPECT_EQ(a.reads, 13u);
  EXPECT_EQ(a.writes, 7u);
  EXPECT_NEAR(a.energy_j, 1.1e-9, 1e-15);
}

// Capacity sweep: energy/latency strictly increase with capacity.
class CapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CapacitySweep, MonotoneInCapacity) {
  const std::size_t cap = GetParam();
  const SramModel cur({cap, 8, 1, 32.0});
  const SramModel next({cap * 2, 8, 1, 32.0});
  EXPECT_LT(cur.read_energy_j(), next.read_energy_j());
  EXPECT_LT(cur.access_latency_s(), next.access_latency_s());
  EXPECT_LT(cur.leakage_power_w(), next.leakage_power_w());
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep,
                         ::testing::Values(std::size_t{4096}, std::size_t{65536},
                                           std::size_t{1048576}, std::size_t{8388608}));

}  // namespace
}  // namespace lumos::mem
