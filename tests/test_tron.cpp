// Tests for the TRON accelerator: softmax LUT, eq. (3) decomposition costs,
// functional photonic ops, attention-head fidelity, and the performance model.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/ops.hpp"
#include "tron/accelerator.hpp"

namespace lumos::tron {
namespace {

phot::AnalogNoiseConfig no_noise() {
  phot::AnalogNoiseConfig n;
  n.dac_quantization = false;
  n.mr_tuning_error = false;
  n.heterodyne_crosstalk = false;
  n.detector_noise = false;
  n.adc_quantization = false;
  return n;
}

TEST(SoftmaxLut, MatchesExactWithinLutError) {
  const SoftmaxLut lut({});
  EXPECT_LT(lut.approximation_error(), 0.02);
}

TEST(SoftmaxLut, OutputsFormDistribution) {
  const SoftmaxLut lut({});
  Rng rng(1);
  std::vector<double> row(32);
  for (double& v : row) v = rng.uniform(-6.0, 6.0);
  lut.apply(row);
  double sum = 0.0;
  for (const double v : row) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SoftmaxLut, CoarserTableIsWorse) {
  SoftmaxLutConfig fine;
  fine.table_size = 1024;
  SoftmaxLutConfig coarse;
  coarse.table_size = 16;
  EXPECT_LT(SoftmaxLut(fine).approximation_error(), SoftmaxLut(coarse).approximation_error());
}

TEST(SoftmaxLut, CostScalesWithElements) {
  const SoftmaxLut lut({});
  EXPECT_NEAR(lut.energy_j(2000), 2.0 * lut.energy_j(1000), 1e-18);
  EXPECT_GE(lut.latency_s(10000), lut.latency_s(100));
}

TEST(PhotonicMatmul, NoiselessTracksExact) {
  const TronConfig cfg = default_tron_config();
  const phot::MrBankArray array(cfg.bank, cfg.array_cols);
  Rng rng(2);
  Rng data(3);
  nn::Matrix a(6, 24), b(24, 10);
  a.fill_uniform(data, -1.0, 1.0);
  b.fill_uniform(data, -1.0, 1.0);
  const nn::Matrix got = photonic_matmul(a, b, array, rng, no_noise());
  const nn::Matrix want = a.matmul(b);
  EXPECT_LT(got.relative_error(want), 0.05);
}

TEST(PhotonicMatmul, FullNoiseRelativeErrorBounded) {
  const TronConfig cfg = default_tron_config();
  const phot::MrBankArray array(cfg.bank, cfg.array_cols);
  Rng rng(4);
  Rng data(5);
  nn::Matrix a(8, 32), b(32, 8);
  a.fill_uniform(data, -1.0, 1.0);
  b.fill_uniform(data, -1.0, 1.0);
  const nn::Matrix got = photonic_matmul(a, b, array, rng, phot::AnalogNoiseConfig{});
  EXPECT_LT(got.relative_error(a.matmul(b)), 0.25);
}

TEST(PhotonicMatmul, ZeroOperandGivesZero) {
  const TronConfig cfg = default_tron_config();
  const phot::MrBankArray array(cfg.bank, cfg.array_cols);
  Rng rng(6);
  nn::Matrix a(4, 8, 0.0), b(8, 4);
  Rng data(7);
  b.fill_uniform(data, -1.0, 1.0);
  const nn::Matrix got = photonic_matmul(a, b, array, rng, phot::AnalogNoiseConfig{});
  for (const double v : got.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PhotonicResidualAdd, TracksExactSum) {
  const TronConfig cfg = default_tron_config();
  const phot::CoherentSummationUnit adder(cfg.bank, cfg.homodyne, 2);
  Rng rng(8);
  Rng data(9);
  nn::Matrix a(4, 4), b(4, 4);
  a.fill_uniform(data, -1.0, 1.0);
  b.fill_uniform(data, -1.0, 1.0);
  const nn::Matrix got = photonic_residual_add(a, b, adder, rng, no_noise());
  EXPECT_LT(got.relative_error(a.add(b)), 1e-6);
}

TEST(PhotonicLayerNorm, TracksExactLayerNorm) {
  const TronConfig cfg = default_tron_config();
  const phot::MrBank ln_ring(cfg.bank);
  Rng rng(10);
  Rng data(11);
  nn::Matrix x(4, 32);
  x.fill_uniform(data, -2.0, 2.0);
  const std::vector<double> gamma(32, 1.0), beta(32, 0.0);
  const nn::Matrix got = photonic_layer_norm(x, gamma, beta, ln_ring, rng, no_noise());
  nn::Matrix want = x;
  nn::layer_norm_rows(want, gamma, beta);
  EXPECT_LT(got.relative_error(want), 0.02);
}

TEST(AttentionHead, MatchesReferenceAttention) {
  TronConfig cfg = default_tron_config();
  const AttentionHeadUnit head(cfg, {});
  Rng rng(12);
  Rng data(13);
  const std::size_t l = 6, d = 16, hd = 8;
  nn::Matrix x(l, d), wq(d, hd), wk(d, hd), wv(d, hd);
  x.fill_uniform(data, -1.0, 1.0);
  wq.fill_normal(data, 1.0 / std::sqrt(d));
  wk.fill_normal(data, 1.0 / std::sqrt(d));
  wv.fill_normal(data, 1.0 / std::sqrt(d));
  const nn::Matrix got = head.forward(x, wq, wk, wv, rng, no_noise());
  const nn::Matrix want = nn::scaled_dot_product_attention(x.matmul(wq), x.matmul(wk),
                                                           x.matmul(wv));
  EXPECT_LT(got.relative_error(want), 0.15);
}

TEST(Decomposition, SavesConversions) {
  const TronConfig cfg = default_tron_config();
  const AttentionHeadUnit head(cfg, {});
  const ScorePathCosts dec = head.decomposed_score_costs(128, 768, 64);
  const ScorePathCosts naive = head.naive_score_costs(128, 768, 64);
  // Eq. (3) removes the K-matrix ADC read-out and DAC re-imprint.
  EXPECT_LT(dec.adc_conversions, naive.adc_conversions);
  EXPECT_LT(dec.dac_conversions, naive.dac_conversions);
  EXPECT_EQ(naive.adc_conversions - dec.adc_conversions, 128u * 64u);
}

TEST(Decomposition, NaivePaysRoundTripLatency) {
  const TronConfig cfg = default_tron_config();
  const AttentionHeadUnit head(cfg, {});
  const ScorePathCosts dec = head.decomposed_score_costs(128, 768, 64);
  const ScorePathCosts naive = head.naive_score_costs(128, 768, 64);
  // The decomposed path does strictly more MatMul passes (S is L x d_model x L
  // instead of L x d_head x L) but avoids the serialised O/E/O round trip;
  // conversion energy still favours it.
  EXPECT_GT(naive.energy_j, 0.0);
  EXPECT_GT(dec.matmul_passes, 0u);
  EXPECT_GT(naive.latency_s - static_cast<double>(naive.matmul_passes) / cfg.symbol_rate_hz,
            0.0);
}

TEST(Estimate, ReportsArePositiveAndConsistent) {
  const TronAccelerator acc(default_tron_config());
  for (const auto& model : nn::llm_model_zoo()) {
    const PerfReport r = acc.estimate(model);
    EXPECT_GT(r.latency_s, 0.0) << model.name;
    EXPECT_GT(r.dynamic_energy_j, 0.0);
    EXPECT_GT(r.static_power_w, 0.0);
    EXPECT_NEAR(r.total_energy_j, r.dynamic_energy_j + r.static_energy_j, 1e-12);
    EXPECT_EQ(r.op_count, model.op_count());
    EXPECT_EQ(r.platform, "TRON");
    // EPB identity.
    EXPECT_NEAR(r.energy_per_bit_j(),
                r.total_energy_j / (static_cast<double>(r.op_count) * r.bits), 1e-20);
  }
}

TEST(Estimate, MoreLayersScaleLatency) {
  const TronAccelerator acc(default_tron_config());
  nn::TransformerConfig small = nn::bert_base();
  nn::TransformerConfig big = small;
  big.layers = 24;
  EXPECT_NEAR(acc.estimate(big).latency_s, 2.0 * acc.estimate(small).latency_s,
              0.01 * acc.estimate(big).latency_s);
}

TEST(Estimate, LongerSequencesCostMore) {
  const TronAccelerator acc(default_tron_config());
  EXPECT_GT(acc.estimate(nn::bert_base(384)).latency_s,
            acc.estimate(nn::bert_base(128)).latency_s);
}

TEST(Estimate, MoreArraysReduceComputeTime) {
  TronConfig few = default_tron_config();
  few.ff_arrays = 8;
  TronConfig many = default_tron_config();
  many.ff_arrays = 64;
  const auto model = nn::bert_base();
  EXPECT_GE(TronAccelerator(few).estimate(model).breakdown.matmul_time_s,
            TronAccelerator(many).estimate(model).breakdown.matmul_time_s);
}

TEST(Estimate, BreakdownSumsBelowTotals) {
  const TronAccelerator acc(default_tron_config());
  const PerfReport r = acc.estimate(nn::bert_base());
  const PerfBreakdown& b = r.breakdown;
  const double dyn = b.laser_dac_adc_energy_j + b.partial_sum_energy_j + b.softmax_energy_j +
                     b.elementwise_energy_j + b.sram_energy_j + b.dram_energy_j;
  EXPECT_NEAR(dyn, r.dynamic_energy_j, 1e-12);
  EXPECT_LE(b.memory_stall_s, r.latency_s + 1e-12);
}

TEST(Functional, TinyTransformerThroughPhotonicPath) {
  const TronConfig cfg = default_tron_config();
  const TronAccelerator acc(cfg);
  const auto model = nn::tiny_transformer(8);
  const auto weights = nn::TransformerWeights::random(model, 99);
  Rng data(14);
  nn::Matrix x(8, model.d_model);
  x.fill_uniform(data, -1.0, 1.0);

  Rng rng(15);
  const nn::Matrix got = acc.forward(weights, x, rng, no_noise());
  const nn::Matrix want = nn::reference_forward(weights, x);
  EXPECT_EQ(got.rows(), want.rows());
  EXPECT_EQ(got.cols(), want.cols());
  // LayerNorm at every block keeps the analog error from compounding.
  EXPECT_LT(got.relative_error(want), 0.30);
}

TEST(Functional, NoisyForwardStillCorrelates) {
  const TronConfig cfg = default_tron_config();
  const TronAccelerator acc(cfg);
  const auto model = nn::tiny_transformer(4);
  const auto weights = nn::TransformerWeights::random(model, 7);
  Rng data(16);
  nn::Matrix x(4, model.d_model);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(17);
  const nn::Matrix got = acc.forward(weights, x, rng, phot::AnalogNoiseConfig{});
  const nn::Matrix want = nn::reference_forward(weights, x);
  // Pearson correlation between outputs stays high under full noise.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const auto n = static_cast<double>(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double a = got.flat()[i];
    const double b = want.flat()[i];
    sx += a;
    sy += b;
    sxx += a * a;
    syy += b * b;
    sxy += a * b;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.85);
}

TEST(EstimateBatch, BatchOneMatchesEstimateBitForBit) {
  const TronAccelerator acc(default_tron_config());
  const auto model = nn::bert_base(128);
  const PerfReport a = acc.estimate(model);
  const PerfReport b = acc.estimate_batch(model, 1);
  EXPECT_EQ(a.latency_s, b.latency_s);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.op_count, b.op_count);
}

TEST(EstimateBatch, LatencySubLinearButNotBelowBatchOne) {
  const TronAccelerator acc(default_tron_config());
  for (const auto& model : {nn::bert_base(128), nn::gpt2_small(256)}) {
    const PerfReport one = acc.estimate_batch(model, 1);
    for (const std::size_t batch : {std::size_t{2}, std::size_t{8}, std::size_t{32}}) {
      const PerfReport r = acc.estimate_batch(model, batch);
      EXPECT_GE(r.latency_s, one.latency_s) << model.name << " batch " << batch;
      EXPECT_LT(r.latency_s, static_cast<double>(batch) * one.latency_s)
          << model.name << " batch " << batch;
      EXPECT_EQ(r.op_count, batch * one.op_count);
    }
  }
}

TEST(EstimateBatch, AmortisesWeightStreamEnergy) {
  const TronAccelerator acc(default_tron_config());
  const auto model = nn::bert_base(128);
  const PerfReport one = acc.estimate_batch(model, 1);
  const PerfReport sixteen = acc.estimate_batch(model, 16);
  // The DRAM weight stream is paid once per layer regardless of batch.
  EXPECT_EQ(sixteen.breakdown.dram_energy_j, one.breakdown.dram_energy_j);
  // So per-request energy (and EPB) strictly improves with batching.
  EXPECT_LT(sixteen.total_energy_j / 16.0, one.total_energy_j);
  EXPECT_LT(sixteen.energy_per_bit_j(), one.energy_per_bit_j());
}

TEST(EstimateGeneration, LatencyAndEnergyMonotoneInTokens) {
  const TronAccelerator acc(default_tron_config());
  double prev_latency = 0.0;
  double prev_energy = 0.0;
  std::size_t prev_ops = 0;
  for (const std::size_t tokens : {std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    const auto model = nn::gpt2_small(64 + tokens);
    const PerfReport r = acc.estimate_generation(model, 64, tokens);
    EXPECT_GT(r.latency_s, prev_latency);
    EXPECT_GT(r.total_energy_j, prev_energy);
    EXPECT_GT(r.op_count, prev_ops);
    prev_latency = r.latency_s;
    prev_energy = r.total_energy_j;
    prev_ops = r.op_count;
  }
}

TEST(EstimateGeneration, DecodeIsMemoryBound) {
  const TronAccelerator acc(default_tron_config());
  const auto model = nn::gpt2_small(128);
  const PerfReport r = acc.estimate_generation(model, 64, 64);
  // Single-token decode re-streams the weights every step: the stall should
  // dominate the latency (the classic memory-bound regime).
  EXPECT_GT(r.breakdown.memory_stall_s, 0.5 * r.latency_s);
}

TEST(StaticPower, ScalesWithFabric) {
  TronConfig small = default_tron_config();
  small.head_units = 4;
  TronConfig big = default_tron_config();
  big.head_units = 16;
  EXPECT_LT(TronAccelerator(small).static_power_w(), TronAccelerator(big).static_power_w());
}

// Precision sweep: EPB identity holds at every bit width.
class BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsSweep, EpbIdentity) {
  TronConfig cfg = default_tron_config();
  cfg.bits = GetParam();
  const TronAccelerator acc(cfg);
  const PerfReport r = acc.estimate(nn::bert_base());
  EXPECT_NEAR(r.energy_per_bit_j() * static_cast<double>(r.op_count) * GetParam(),
              r.total_energy_j, r.total_energy_j * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Bits, BitsSweep, ::testing::Values(4, 8, 12));

}  // namespace
}  // namespace lumos::tron
