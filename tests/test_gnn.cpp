// Tests for the GNN reference executions (GCN / GraphSAGE / GIN / GAT) and
// the per-phase operation accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "gnn/models.hpp"

namespace lumos::gnn {
namespace {

graph::CsrGraph path_graph() {
  // 0 - 1 - 2 (undirected path).
  return graph::CsrGraph(3, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
}

TEST(Zoo, FourModelFamilies) {
  const auto zoo = gnn_model_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0].kind, GnnKind::kGcn);
  EXPECT_EQ(zoo[1].kind, GnnKind::kGraphSage);
  EXPECT_EQ(zoo[2].kind, GnnKind::kGin);
  EXPECT_EQ(zoo[3].kind, GnnKind::kGat);
  EXPECT_STREQ(kind_name(GnnKind::kGat), "GAT");
}

TEST(Zoo, LayerExpansionWiresDimensions) {
  const auto ds = graph::tiny_dataset();
  const auto layers = gcn_model().layers_for(ds);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].in_dim, ds.feature_dim);
  EXPECT_EQ(layers[0].out_dim, gcn_model().hidden_dim);
  EXPECT_EQ(layers[1].in_dim, gcn_model().hidden_dim);
  EXPECT_EQ(layers[1].out_dim, ds.class_count);
}

TEST(Gcn, HandComputedAggregation) {
  // Path graph, 1 feature, identity weight: GCN aggregate for node 0 is
  // x0/(d0+1) + x1/sqrt((d0+1)(d1+1)) with d0=1, d1=2.
  const graph::CsrGraph g = path_graph();
  GnnLayerConfig cfg{GnnKind::kGcn, 1, 1, Reduction::kSum, 1};
  GnnLayerWeights w = GnnLayerWeights::random(cfg, 1);
  w.w = nn::Matrix(1, 1);
  w.w(0, 0) = 1.0;  // identity transform
  nn::Matrix x(3, 1);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 3.0;
  const nn::Matrix y = reference_layer_forward(w, g, x, /*apply_activation=*/false);
  const double want0 = 1.0 / 2.0 + 2.0 / std::sqrt(2.0 * 3.0);
  const double want1 = 2.0 / 3.0 + 1.0 / std::sqrt(3.0 * 2.0) + 3.0 / std::sqrt(3.0 * 2.0);
  EXPECT_NEAR(y(0, 0), want0, 1e-12);
  EXPECT_NEAR(y(1, 0), want1, 1e-12);
}

TEST(Gin, SelfWeightingApplied) {
  const graph::CsrGraph g = path_graph();
  GnnLayerConfig cfg{GnnKind::kGin, 1, 1, Reduction::kSum, 1};
  GnnLayerWeights w = GnnLayerWeights::random(cfg, 2);
  w.w = nn::Matrix(1, 1);
  w.w(0, 0) = 1.0;
  w.gin_eps = 0.5;
  nn::Matrix x(3, 1);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 3.0;
  const nn::Matrix y = reference_layer_forward(w, g, x, false);
  EXPECT_NEAR(y(0, 0), 1.5 * 1.0 + 2.0, 1e-12);       // (1+eps)x0 + x1
  EXPECT_NEAR(y(1, 0), 1.5 * 2.0 + 1.0 + 3.0, 1e-12);  // (1+eps)x1 + x0 + x2
}

TEST(GraphSage, ConcatenatesSelfAndMean) {
  const graph::CsrGraph g = path_graph();
  GnnLayerConfig cfg{GnnKind::kGraphSage, 1, 2, Reduction::kMean, 1};
  GnnLayerWeights w = GnnLayerWeights::random(cfg, 3);
  // W picks out [self, mean] into the two outputs.
  w.w = nn::Matrix(2, 2, 0.0);
  w.w(0, 0) = 1.0;  // out0 = self
  w.w(1, 1) = 1.0;  // out1 = mean of neighbours
  nn::Matrix x(3, 1);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 3.0;
  const nn::Matrix y = reference_layer_forward(w, g, x, false);
  EXPECT_NEAR(y(1, 0), 2.0, 1e-12);             // self
  EXPECT_NEAR(y(1, 1), (1.0 + 3.0) / 2.0, 1e-12);  // mean of 0 and 2
}

TEST(Gat, AttentionWeightsFormConvexCombination) {
  // With zero attention vectors all scores tie, so each node averages the
  // transformed self+neighbour features uniformly.
  const graph::CsrGraph g = path_graph();
  GnnLayerConfig cfg{GnnKind::kGat, 1, 1, Reduction::kSum, 2};
  GnnLayerWeights w = GnnLayerWeights::random(cfg, 4);
  w.w = nn::Matrix(1, 1);
  w.w(0, 0) = 1.0;
  w.gat_a_src = nn::Matrix(1, 2, 0.0);
  w.gat_a_dst = nn::Matrix(1, 2, 0.0);
  nn::Matrix x(3, 1);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 3.0;
  const nn::Matrix y = reference_layer_forward(w, g, x, false);
  EXPECT_NEAR(y(0, 0), (1.0 + 2.0) / 2.0, 1e-9);
  EXPECT_NEAR(y(1, 0), (2.0 + 1.0 + 3.0) / 3.0, 1e-9);
}

TEST(Forward, OutputShapeIsClasses) {
  const auto ds = graph::tiny_dataset();
  for (const auto& model : gnn_model_zoo()) {
    const auto weights = GnnModelWeights::random(model, ds, 5);
    Rng rng(6);
    nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
    x.fill_uniform(rng, -1.0, 1.0);
    const nn::Matrix y = reference_forward(weights, ds.graph, x);
    EXPECT_EQ(y.rows(), ds.graph.node_count()) << model.name;
    EXPECT_EQ(y.cols(), ds.class_count) << model.name;
  }
}

TEST(Forward, HiddenActivationsNonNegative) {
  // ReLU between layers: a one-layer truncation must be non-negative.
  const auto ds = graph::tiny_dataset();
  const auto model = gcn_model();
  const auto weights = GnnModelWeights::random(model, ds, 7);
  Rng rng(8);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(rng, -1.0, 1.0);
  const nn::Matrix h = reference_layer_forward(weights.layers[0], ds.graph, x, true);
  for (const double v : h.flat()) EXPECT_GE(v, 0.0);
}

TEST(Ops, GcnCountsMatchFormula) {
  const auto ds = graph::tiny_dataset();
  GnnLayerConfig cfg{GnnKind::kGcn, 16, 8, Reduction::kSum, 1};
  const GnnLayerOps ops = count_layer_ops(cfg, ds.graph);
  const std::size_t e = ds.graph.edge_count();
  const std::size_t v = ds.graph.node_count();
  EXPECT_EQ(ops.aggregate_ops, (e + v) * 16u);
  EXPECT_EQ(ops.combine_macs, v * 16u * 8u);
  EXPECT_EQ(ops.update_ops, v * 8u);
  EXPECT_EQ(ops.attention_macs, 0u);
}

TEST(Ops, SageDoublesCombineInput) {
  const auto ds = graph::tiny_dataset();
  GnnLayerConfig gcn{GnnKind::kGcn, 16, 8, Reduction::kSum, 1};
  GnnLayerConfig sage{GnnKind::kGraphSage, 16, 8, Reduction::kMean, 1};
  EXPECT_EQ(count_layer_ops(sage, ds.graph).combine_macs,
            2u * count_layer_ops(gcn, ds.graph).combine_macs);
}

TEST(Ops, GatChargesAttention) {
  const auto ds = graph::tiny_dataset();
  GnnLayerConfig cfg{GnnKind::kGat, 16, 8, Reduction::kSum, 4};
  const GnnLayerOps ops = count_layer_ops(cfg, ds.graph);
  EXPECT_GT(ops.attention_macs, 0u);
  EXPECT_GT(ops.attention_softmax_elems, 0u);
  EXPECT_EQ(ops.attention_macs, ds.graph.edge_count() * 2u * 8u * 4u);
}

TEST(Ops, TotalIncludesEverything) {
  const auto ds = graph::tiny_dataset();
  GnnLayerConfig cfg{GnnKind::kGat, 16, 8, Reduction::kSum, 4};
  const GnnLayerOps ops = count_layer_ops(cfg, ds.graph);
  EXPECT_EQ(ops.total_ops(), ops.aggregate_ops + 2 * ops.combine_macs + ops.update_ops +
                                 2 * ops.attention_macs + ops.attention_softmax_elems);
}

TEST(Ops, ModelOpCountSumsLayers) {
  const auto ds = graph::tiny_dataset();
  const auto model = gin_model();
  std::size_t manual = 0;
  for (const auto& l : model.layers_for(ds)) {
    manual += count_layer_ops(l, ds.graph).total_ops();
  }
  EXPECT_EQ(model_op_count(model, ds), manual);
}

TEST(Weights, DeterministicPerSeed) {
  const auto ds = graph::tiny_dataset();
  const auto a = GnnModelWeights::random(gcn_model(), ds, 9);
  const auto b = GnnModelWeights::random(gcn_model(), ds, 9);
  EXPECT_DOUBLE_EQ(a.layers[0].w.relative_error(b.layers[0].w), 0.0);
}

TEST(Weights, InvalidDimsRejected) {
  GnnLayerConfig cfg{GnnKind::kGcn, 0, 4, Reduction::kSum, 1};
  EXPECT_THROW((void)GnnLayerWeights::random(cfg, 1), lumos::InvalidArgument);
}

// Reduction sweep on the reference path: each reduction obeys its identity
// on a constant vector.
class ReductionSweep : public ::testing::TestWithParam<Reduction> {};

TEST_P(ReductionSweep, ConstantInputFixedPoints) {
  const auto ds = graph::tiny_dataset();
  GnnLayerConfig cfg{GnnKind::kGraphSage, 4, 4, GetParam(), 1};
  GnnLayerWeights w = GnnLayerWeights::random(cfg, 10);
  // Select the neighbour-aggregate half of the concat.
  w.w = nn::Matrix(8, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) w.w(4 + i, i) = 1.0;
  nn::Matrix x(ds.graph.node_count(), 4, 0.5);
  const nn::Matrix y = reference_layer_forward(w, ds.graph, x, false);
  for (std::size_t v = 0; v < y.rows(); ++v) {
    const double deg = static_cast<double>(ds.graph.degree(static_cast<graph::NodeId>(v)));
    for (std::size_t c = 0; c < 4; ++c) {
      double want = 0.0;
      switch (GetParam()) {
        case Reduction::kSum:
          want = 0.5 * deg;
          break;
        case Reduction::kMean:
          want = deg > 0 ? 0.5 : 0.0;
          break;
        case Reduction::kMax:
          want = deg > 0 ? 0.5 : 0.0;
          break;
      }
      EXPECT_NEAR(y(v, c), want, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Reductions, ReductionSweep,
                         ::testing::Values(Reduction::kSum, Reduction::kMean, Reduction::kMax));

}  // namespace
}  // namespace lumos::gnn
