// Tests for the electronic baseline platform models.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "baselines/platforms.hpp"

namespace lumos::baselines {
namespace {

TEST(Platforms, ComparisonSetsMatchPaper) {
  const auto llm = llm_baselines();
  ASSERT_EQ(llm.size(), 7u);  // V100, TPUv2, Xeon, TransPIM, FPGA_Acc1, VAQF, FPGA_Acc2
  const auto gnn = gnn_baselines();
  ASSERT_EQ(gnn.size(), 9u);  // GRIP, HyGCN, EnGN, HW_ACC, ReGNN, ReGraphX, TPUv4, Xeon, A100
}

TEST(Platforms, EstimateBasicConsistency) {
  const PlatformModel gpu = v100_gpu();
  const PerfReport r = gpu.estimate("probe", 1'000'000'000, 1e6, WorkloadClass::kTransformer);
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_GT(r.total_energy_j, 0.0);
  EXPECT_NEAR(r.total_energy_j, r.static_energy_j + r.dynamic_energy_j, 1e-12);
  EXPECT_EQ(r.platform, "V100 GPU");
}

TEST(Platforms, ComputeBoundScalesWithOps) {
  const PlatformModel gpu = v100_gpu();
  const PerfReport small = gpu.estimate("a", 1'000'000'000, 1.0, WorkloadClass::kTransformer);
  const PerfReport large = gpu.estimate("b", 2'000'000'000, 1.0, WorkloadClass::kTransformer);
  const double overhead = gpu.spec().transformer_overhead_s;
  EXPECT_NEAR(large.latency_s - overhead, 2.0 * (small.latency_s - overhead),
              1e-6 * large.latency_s);
}

TEST(Platforms, MemoryBoundScalesWithBytes) {
  const PlatformModel cpu = xeon_cpu();
  const PerfReport small = cpu.estimate("a", 1, 1e9, WorkloadClass::kGnn);
  const PerfReport large = cpu.estimate("b", 1, 2e9, WorkloadClass::kGnn);
  const double overhead = cpu.spec().gnn_overhead_s;
  EXPECT_NEAR(large.latency_s - overhead, 2.0 * (small.latency_s - overhead),
              1e-6 * large.latency_s);
}

TEST(Platforms, GnnUtilisationLowerThanTransformer) {
  for (const auto& p : gnn_baselines()) {
    EXPECT_LE(p.spec().gnn_utilization, p.spec().transformer_utilization + 1e-12)
        << p.spec().name;
  }
}

TEST(Platforms, GnnWorkloadSlowerPerOpThanDense) {
  const PlatformModel gpu = a100_gpu();
  const PerfReport dense = gpu.estimate("d", 10'000'000'000, 1.0, WorkloadClass::kTransformer);
  const PerfReport sparse = gpu.estimate("s", 10'000'000'000, 1.0, WorkloadClass::kGnn);
  EXPECT_GT(sparse.latency_s, dense.latency_s);
}

TEST(Platforms, EnergyNeverBelowIdleFloor) {
  for (const auto& p : llm_baselines()) {
    const PerfReport r = p.estimate("probe", 1'000'000, 1e3, WorkloadClass::kTransformer);
    EXPECT_GE(r.total_energy_j, r.static_power_w * r.latency_s - 1e-12) << p.spec().name;
    EXPECT_LE(r.average_power_w(), p.spec().board_power_w + 1e-9) << p.spec().name;
  }
}

TEST(Platforms, TransformerEstimateUsesModelOps) {
  const PlatformModel tpu = tpu_v2();
  const auto model = nn::bert_base();
  const PerfReport r = tpu.estimate_transformer(model);
  EXPECT_EQ(r.op_count, model.op_count());
  EXPECT_EQ(r.workload, "BERT-base");
}

TEST(Platforms, GnnEstimateUsesModelOps) {
  const PlatformModel acc = hygcn();
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_cora();
  const PerfReport r = acc.estimate_gnn(model, ds);
  EXPECT_EQ(r.op_count, gnn::model_op_count(model, ds));
  EXPECT_EQ(r.workload, "GCN/Cora");
}

TEST(Platforms, BiggerModelsTakeLonger) {
  const PlatformModel gpu = v100_gpu();
  EXPECT_GT(gpu.estimate_transformer(nn::bert_large()).latency_s,
            gpu.estimate_transformer(nn::bert_base()).latency_s);
}

TEST(Platforms, AcceleratorsBeatCpuOnGnns) {
  // Sanity on ordering: the dedicated GNN accelerators outrun the CPU.
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_cora();
  const double cpu = xeon_cpu().estimate_gnn(model, ds).latency_s;
  for (const auto& make : {grip, hygcn, engn, regnn, regraphx}) {
    EXPECT_LT(make().estimate_gnn(model, ds).latency_s, cpu) << make().spec().name;
  }
}

TEST(Platforms, InvalidSpecRejected) {
  PlatformSpec s;
  s.name = "bad";
  s.peak_ops_per_s = 0.0;
  s.memory_bandwidth_bps = 1.0;
  s.board_power_w = 1.0;
  EXPECT_THROW(PlatformModel{s}, lumos::InvalidArgument);
}

// EPB identity sweep across all platforms on a fixed workload.
class PlatformSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlatformSweep, EpbIdentity) {
  const auto platforms = llm_baselines();
  const auto& p = platforms[GetParam()];
  const PerfReport r = p.estimate_transformer(nn::gpt2_small());
  EXPECT_NEAR(r.energy_per_bit_j() * static_cast<double>(r.op_count) * r.bits,
              r.total_energy_j, r.total_energy_j * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllLlmPlatforms, PlatformSweep,
                         ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{4}, std::size_t{5},
                                           std::size_t{6}));

}  // namespace
}  // namespace lumos::baselines
