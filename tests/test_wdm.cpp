// Tests for the WDM link design-space search (paper Section V.B's "optimal MR
// design and configurations that would result in negligible crosstalk").
#include <gtest/gtest.h>

#include "photonics/wdm.hpp"

namespace lumos::phot {
namespace {

WdmLinkDesigner make_designer() {
  return WdmLinkDesigner(MicroringDesign{}, PhotodetectorConfig{}, VcselConfig{}, LossStack{});
}

TEST(Wdm, EvaluateFillsAllFields) {
  const WdmLinkDesigner d = make_designer();
  const WdmDesignPoint p = d.evaluate(8000.0, 16, 8);
  EXPECT_EQ(p.channel_count, 16u);
  EXPECT_GT(p.channel_spacing_m, 0.0);
  EXPECT_GT(p.crosstalk_fraction, 0.0);
  EXPECT_GT(p.laser_power_per_channel_w, 0.0);
  EXPECT_NE(p.effective_snr_db, 0.0);
}

TEST(Wdm, FewerChannelsWidenSpacing) {
  const WdmLinkDesigner d = make_designer();
  EXPECT_GT(d.evaluate(8000.0, 4, 8).channel_spacing_m,
            d.evaluate(8000.0, 16, 8).channel_spacing_m);
}

TEST(Wdm, MoreChannelsWorsenSnr) {
  const WdmLinkDesigner d = make_designer();
  EXPECT_GT(d.evaluate(8000.0, 8, 8).effective_snr_db,
            d.evaluate(8000.0, 48, 8).effective_snr_db);
}

TEST(Wdm, HigherQImprovesSnrAtFixedCount) {
  const WdmLinkDesigner d = make_designer();
  EXPECT_LT(d.evaluate(4000.0, 32, 8).effective_snr_db,
            d.evaluate(16000.0, 32, 8).effective_snr_db);
}

TEST(Wdm, SweepCoversWholeSpace) {
  const WdmLinkDesigner d = make_designer();
  WdmSearchSpace space;
  const auto points = d.sweep(space);
  EXPECT_EQ(points.size(), space.quality_factors.size() * space.channel_counts.size());
}

TEST(Wdm, BestPointIsFeasible) {
  const WdmLinkDesigner d = make_designer();
  const WdmSearchSpace space;
  const auto best = d.best(space);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->feasible);
  EXPECT_GE(best->effective_snr_db, space.min_effective_snr_db);
}

TEST(Wdm, BestMaximisesChannelCount) {
  const WdmLinkDesigner d = make_designer();
  const WdmSearchSpace space;
  const auto best = d.best(space);
  ASSERT_TRUE(best.has_value());
  for (const WdmDesignPoint& p : d.sweep(space)) {
    if (p.feasible) {
      EXPECT_LE(p.channel_count, best->channel_count);
    }
  }
}

TEST(Wdm, DefaultDesignPointIsFeasible) {
  // The accelerators' default 16-wavelength / Q=8000 bank must be a feasible
  // point of the search — the "fixed point" DESIGN.md claims.
  const WdmLinkDesigner d = make_designer();
  EXPECT_TRUE(d.evaluate(8000.0, 16, 8).feasible);
}

TEST(Wdm, ImpossibleTargetYieldsNoDesign) {
  const WdmLinkDesigner d = make_designer();
  WdmSearchSpace space;
  space.min_effective_snr_db = 60.0;  // beyond the crosstalk-free ceiling
  space.quality_factors = {2000.0};
  space.channel_counts = {64};
  EXPECT_FALSE(d.best(space).has_value());
}

TEST(Wdm, GuardBandReducesUsableSpectrum) {
  const WdmLinkDesigner d = make_designer();
  const auto tight = d.evaluate(8000.0, 16, 8, 0.0);
  const auto guarded = d.evaluate(8000.0, 16, 8, 0.3);
  EXPECT_GT(tight.channel_spacing_m, guarded.channel_spacing_m);
}

// Feasibility frontier: at fixed Q, feasibility is monotone — once channel
// count makes the design infeasible, more channels never restore it.
class FrontierSweep : public ::testing::TestWithParam<double> {};

TEST_P(FrontierSweep, FeasibilityMonotoneInChannelCount) {
  const WdmLinkDesigner d = make_designer();
  bool seen_infeasible = false;
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const bool ok = d.evaluate(GetParam(), n, 8).feasible;
    if (seen_infeasible) {
      EXPECT_FALSE(ok);
    }
    if (!ok) seen_infeasible = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, FrontierSweep,
                         ::testing::Values(4000.0, 8000.0, 12000.0, 16000.0));

}  // namespace
}  // namespace lumos::phot
