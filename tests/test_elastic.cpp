// Tests for the elastic-serving subsystem: autoscaling policies (growth,
// drain-before-retire shrink, parity of a no-op autoscaler with a static
// fleet), per-tenant SLOs and strict priority tiers (parity of all-zero
// tiers with the untiered scheduler), FleetMetrics percentile edge cases,
// and the campaign autoscaler axis.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "serve/campaign.hpp"
#include "serve/simulator.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Request make_request(std::uint64_t id, double arrival_s, std::uint32_t workload) {
  return {id, arrival_s, workload};
}

// Scenario over an explicit pre-materialised trace.
FleetMetrics simulate_trace(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                            std::vector<Request> trace, SchedulerKind scheduler,
                            const BatchPolicy& policy, const SimConfig& sim = {}) {
  Scenario scenario;
  scenario.fleet = fleet;
  scenario.catalog = catalog;
  scenario.scheduler = scheduler;
  scenario.batch = policy;
  scenario.sim = sim;
  scenario.trace = std::move(trace);
  return simulate(scenario);
}

std::vector<Request> tron_trace(const WorkloadCatalog& catalog, double qps_fraction,
                                std::size_t requests, std::uint64_t seed) {
  TraceConfig cfg;
  cfg.offered_qps = qps_fraction * fleet_capacity_qps(catalog, "tron", 2, 8);
  cfg.request_count = requests;
  cfg.seed = seed;
  return generate_trace(catalog, cfg);
}

// `exact_queue_integral = false` relaxes only the time-weighted queue-depth
// integral: an enabled-but-pinned autoscaler wakes the loop at interval
// boundaries, splitting `queued * dt` terms into sums that are equal in exact
// arithmetic but may round differently.  Every event-ordering-dependent
// metric stays bit-exact.
void expect_bit_identical(const FleetMetrics& a, const FleetMetrics& b,
                          bool exact_queue_integral = true) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_EQ(a.goodput_qps, b.goodput_qps);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  if (exact_queue_integral) {
    EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  } else {
    EXPECT_NEAR(a.mean_queue_depth, b.mean_queue_depth,
                1e-9 * std::max(a.mean_queue_depth, 1.0));
  }
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
}

// ---------------------------------------------------------------------------
// Parity: elastic machinery off must be bit-identical to the static simulator
// ---------------------------------------------------------------------------

TEST(ElasticParity, NoOpAutoscalerBitIdenticalToStaticFleet) {
  // A pinned autoscaler (min_slots == max_slots == the fleet size) evaluates
  // every interval but can never act; its extra event-loop wakeups must not
  // change a single bit of the results.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 0.7, 8000, 91);
  BatchPolicy policy;
  policy.max_batch = 8;

  const FleetMetrics off =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  SimConfig pinned;
  pinned.autoscaler.policy = AutoscalerPolicy::kQueueDepth;
  pinned.autoscaler.min_slots = 2;
  pinned.autoscaler.max_slots = 2;
  const FleetMetrics on =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, pinned);
  EXPECT_EQ(on.autoscale_grows, 0u);
  EXPECT_EQ(on.autoscale_shrinks, 0u);
  expect_bit_identical(off, on, /*exact_queue_integral=*/false);
}

TEST(ElasticParity, DisabledAutoscalerIsTheStaticSimulator) {
  // policy == kNone must not even wake the loop: explicit default SimConfig
  // vs an explicitly-disabled autoscaler, bit-exact across the board.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 0.8, 6000, 90);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig off;
  off.autoscaler.policy = AutoscalerPolicy::kNone;
  off.autoscaler.interval_s = 1e-5;  // ignored: kNone never evaluates
  expect_bit_identical(
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy),
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, off));
}

TEST(ElasticParity, AllZeroPrioritiesBitIdenticalToUntiered) {
  WorkloadCatalog untouched = WorkloadCatalog::tron_default();
  WorkloadCatalog zeroed = WorkloadCatalog::tron_default();
  for (std::size_t i = 0; i < zeroed.size(); ++i) zeroed.set_priority(i, 0);
  EXPECT_TRUE(zeroed.priorities().empty());  // all-zero collapses to untiered

  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(untouched, 0.9, 8000, 92);
  BatchPolicy policy;
  policy.max_batch = 8;
  expect_bit_identical(
      simulate_trace(fleet, untouched, trace, SchedulerKind::kDynamicBatch, policy),
      simulate_trace(fleet, zeroed, trace, SchedulerKind::kDynamicBatch, policy));
}

// ---------------------------------------------------------------------------
// Priority tiers in the schedulers
// ---------------------------------------------------------------------------

TEST(PriorityScheduler, FifoPopsLowerTierFirstDespiteArrivalOrder) {
  // Workload 0 is tier 1, workload 1 is tier 0: the later-arriving tier-0
  // request must pop first; within a tier, arrival order still rules.
  const auto sched = make_scheduler(SchedulerKind::kFifo, {}, {1, 0});
  sched->enqueue(make_request(0, 0.0, 0), 0.0);
  sched->enqueue(make_request(1, 0.1, 1), 0.1);
  sched->enqueue(make_request(2, 0.2, 0), 0.2);
  EXPECT_EQ(sched->pop(0.3).front().id, 1u);
  EXPECT_EQ(sched->pop(0.3).front().id, 0u);
  EXPECT_EQ(sched->pop(0.3).front().id, 2u);
}

TEST(PriorityScheduler, FifoMaskStillFiltersAcrossTiers) {
  // The tier-0 workload is masked out (no idle compatible accelerator): the
  // tier-1 request must dispatch rather than head-of-line block.
  const auto sched = make_scheduler(SchedulerKind::kFifo, {}, {1, 0});
  sched->enqueue(make_request(0, 0.0, 0), 0.0);
  sched->enqueue(make_request(1, 0.1, 1), 0.1);
  const std::vector<char> only_workload_0{1, 0};
  const WorkloadMask mask(&only_workload_0);
  EXPECT_EQ(sched->pop(0.2, mask).front().id, 0u);
}

TEST(PriorityScheduler, DynamicBatchServesLowerTierBeforeLongerWaitingBucket) {
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_s = 0.0;  // everything is ready immediately
  const auto sched = make_scheduler(SchedulerKind::kDynamicBatch, policy, {1, 0});
  sched->enqueue(make_request(0, 0.0, 0), 0.0);   // tier 1, waiting longest
  sched->enqueue(make_request(1, 0.5, 1), 0.5);   // tier 0, fresh
  const std::vector<Request> first = sched->pop(0.6);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.front().workload, 1u);
  EXPECT_EQ(sched->pop(0.6).front().workload, 0u);
}

TEST(PriorityScheduler, DeadlinesOfLowTiersStillWakeTheLoop) {
  // next_deadline_s must ignore tiers: a lone tier-1 bucket's deadline is the
  // only reason the loop would wake, tier order only reorders ready work.
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_s = 0.5;
  const auto sched = make_scheduler(SchedulerKind::kDynamicBatch, policy, {7});
  sched->enqueue(make_request(0, 1.0, 0), 1.0);
  EXPECT_EQ(sched->next_deadline_s(), 1.5);
}

TEST(PriorityServing, OverloadFavoursTierZeroTail) {
  // 3x overload on a mixed two-tier catalog: tier-0 tenants keep a far
  // better tail than tier-1 tenants on the same fleet.
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_default_tiers();
  ASSERT_FALSE(catalog.priorities().empty());
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 3.0, 12000, 93);
  BatchPolicy policy;
  policy.max_batch = 8;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  ASSERT_EQ(m.tenants.size(), catalog.size());
  double tier0_worst_p99 = 0.0;
  double tier1_best_p99 = 1e300;
  for (const TenantMetrics& t : m.tenants) {
    if (t.priority == 0) {
      tier0_worst_p99 = std::max(tier0_worst_p99, t.p99_latency_s);
    } else {
      tier1_best_p99 = std::min(tier1_best_p99, t.p99_latency_s);
    }
  }
  EXPECT_LT(tier0_worst_p99, 0.5 * tier1_best_p99);
}

// ---------------------------------------------------------------------------
// Per-tenant SLOs
// ---------------------------------------------------------------------------

TEST(TenantSlo, PerEntrySloOverridesGlobalAndFeedsAggregate) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  // Impossible SLO for one tenant only: its attainment collapses while the
  // others stay perfect, and the aggregate counts each request against its
  // own tenant's SLO.
  catalog.set_slo(1, 1e-12);
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 4);
  const std::vector<Request> trace = tron_trace(catalog, 0.2, 4000, 94);
  BatchPolicy policy;
  policy.max_batch = 8;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  ASSERT_EQ(m.tenants.size(), catalog.size());
  EXPECT_EQ(m.tenants[1].slo_latency_s, 1e-12);
  EXPECT_EQ(m.tenants[1].slo_attainment, 0.0);
  std::size_t expected_within = 0;
  for (const TenantMetrics& t : m.tenants) {
    if (t.slo_latency_s != 1e-12) {
      EXPECT_EQ(t.slo_attainment, 1.0) << t.name;
    }
    expected_within += static_cast<std::size_t>(t.slo_attainment *
                                                static_cast<double>(t.completed) +
                                                0.5);
  }
  EXPECT_NEAR(m.slo_attainment,
              static_cast<double>(expected_within) / static_cast<double>(m.completed),
              1e-12);
  EXPECT_LT(m.slo_attainment, 1.0);
  EXPECT_GT(m.slo_attainment, 0.5);
}

TEST(TenantSlo, CatalogRejectsBadSlo) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  EXPECT_THROW(catalog.set_slo(0, 0.0), InvalidArgument);
  EXPECT_THROW(catalog.set_slo(0, -1.0), InvalidArgument);
}

TEST(TenantMetricsEdge, SingleRequestTrace) {
  // A 1-sample tenant: every percentile is that sample; the other tenants
  // report zeroed metrics without dividing by zero.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const std::vector<Request> trace{make_request(0, 0.0, 2)};
  const FleetMetrics m = simulate_trace(FleetConfig::homogeneous("tron", 1), catalog, trace,
                                  SchedulerKind::kFifo, BatchPolicy{});
  EXPECT_EQ(m.completed, 1u);
  ASSERT_EQ(m.tenants.size(), catalog.size());
  const TenantMetrics& served = m.tenants[2];
  EXPECT_EQ(served.completed, 1u);
  EXPECT_GT(served.p50_latency_s, 0.0);
  EXPECT_EQ(served.p50_latency_s, served.p99_latency_s);
  EXPECT_EQ(served.p50_latency_s, served.max_latency_s);
  EXPECT_EQ(served.p50_latency_s, m.p999_latency_s);
  EXPECT_EQ(served.slo_attainment, 1.0);
  for (const std::uint32_t w : {0u, 1u, 3u}) {
    EXPECT_EQ(m.tenants[w].completed, 0u);
    EXPECT_EQ(m.tenants[w].p99_latency_s, 0.0);
    EXPECT_EQ(m.tenants[w].slo_attainment, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Percentile edge cases
// ---------------------------------------------------------------------------

TEST(PercentileEdge, SingleSampleIsEveryPercentile) {
  for (const double q : {0.0, 0.5, 0.95, 0.999, 1.0}) {
    std::vector<double> one{3.5};
    EXPECT_EQ(percentile(one, q), 3.5) << "q=" << q;
  }
}

TEST(PercentileEdge, AllIdenticalLatencies) {
  std::vector<double> same(1000, 2.25);
  EXPECT_EQ(percentile(same, 0.5), 2.25);
  EXPECT_EQ(percentile(same, 0.999), 2.25);
}

TEST(PercentileEdge, P999OnShortRunsTakesTheMax) {
  // Nearest-rank on n <= 1000: ceil(0.999 * n) == n, so p99.9 is the max.
  std::vector<double> ten{9, 1, 8, 2, 7, 3, 6, 4, 5, 10};
  EXPECT_EQ(percentile(ten, 0.999), 10.0);
  std::vector<double> hundred;
  for (int i = 100; i > 0; --i) hundred.push_back(i);
  EXPECT_EQ(percentile(hundred, 0.999), 100.0);
  // First n where the nearest rank drops below the max: ceil(0.999*1001) =
  // 1000, so index 999 of the sorted 0..1000.
  std::vector<double> thousand_one;
  for (int i = 0; i < 1001; ++i) thousand_one.push_back(i);
  EXPECT_EQ(percentile(thousand_one, 0.999), 999.0);
}

// ---------------------------------------------------------------------------
// Autoscaler policies and the elastic event loop
// ---------------------------------------------------------------------------

TEST(Autoscaler, ValidationNamesBadFields) {
  const auto expect_invalid = [](AutoscalerConfig cfg, const char* field) {
    try {
      validate_autoscaler(cfg);
      FAIL() << "expected InvalidArgument naming " << field;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };
  AutoscalerConfig cfg;
  cfg.policy = AutoscalerPolicy::kQueueDepth;
  AutoscalerConfig bad = cfg;
  bad.interval_s = 0.0;
  expect_invalid(bad, "interval_s");
  bad = cfg;
  bad.min_slots = 0;
  expect_invalid(bad, "min_slots");
  bad = cfg;
  bad.max_slots = 1;
  bad.min_slots = 2;
  expect_invalid(bad, "max_slots");
  bad = cfg;
  bad.grow_scale = -0.5;
  expect_invalid(bad, "grow_scale");
  bad = cfg;
  bad.target_utilization = 1.5;
  expect_invalid(bad, "target_utilization");
  // kNone never validates its knobs (and never constructs a policy).
  AutoscalerConfig off;
  off.interval_s = -1.0;
  EXPECT_NO_THROW(validate_autoscaler(off));
  EXPECT_EQ(make_autoscaler(off), nullptr);
}

TEST(Autoscaler, StepDirectionsMatchSignals) {
  AutoscalerConfig cfg;
  cfg.policy = AutoscalerPolicy::kQueueDepth;
  const auto queue = make_autoscaler(cfg);
  FamilySignals s;
  s.active_slots = 2;
  s.queued = 20;  // 10 per slot > 4: grow
  s.utilization = 1.0;
  EXPECT_EQ(queue->step(s), 1);
  s.queued = 0;
  s.utilization = 0.1;  // idle: shrink
  EXPECT_EQ(queue->step(s), -1);
  s.utilization = 0.9;  // busy, no backlog: hold
  EXPECT_EQ(queue->step(s), 0);

  cfg.policy = AutoscalerPolicy::kTargetUtilization;
  const auto util = make_autoscaler(cfg);
  s.utilization = 0.95;  // above 0.65 + 0.15
  EXPECT_EQ(util->step(s), 1);
  s.utilization = 0.2;  // below 0.65 - 0.15
  s.queued = 0;
  EXPECT_EQ(util->step(s), -1);
  s.queued = 50;  // backlog blocks the shrink
  EXPECT_EQ(util->step(s), 0);
  s.queued = 0;
  s.utilization = 0.65;  // inside the band
  EXPECT_EQ(util->step(s), 0);
}

TEST(Elastic, GrowsUnderOverloadAndBeatsTheStaticFleet) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 2.0, 20000, 95);
  BatchPolicy policy;
  policy.max_batch = 8;

  const FleetMetrics flat =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  SimConfig sim;
  sim.autoscaler.policy = AutoscalerPolicy::kQueueDepth;
  sim.autoscaler.max_slots = 8;
  const FleetMetrics elastic =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);

  EXPECT_EQ(elastic.completed, trace.size());
  EXPECT_GT(elastic.autoscale_grows, 0u);
  EXPECT_GT(elastic.peak_fleet_size, elastic.initial_fleet_size);
  EXPECT_GT(elastic.mean_fleet_size, 2.0);
  EXPECT_GT(elastic.goodput_qps, 2.0 * flat.goodput_qps);
  EXPECT_LT(elastic.p99_latency_s, flat.p99_latency_s);
}

TEST(Elastic, RunsAreBitReproducible) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 1.5, 10000, 96);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.autoscaler.policy = AutoscalerPolicy::kTargetUtilization;
  sim.autoscaler.max_slots = 8;
  const FleetMetrics a =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  const FleetMetrics b =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  expect_bit_identical(a, b);
  EXPECT_EQ(a.autoscale_grows, b.autoscale_grows);
  EXPECT_EQ(a.autoscale_shrinks, b.autoscale_shrinks);
  EXPECT_EQ(a.peak_fleet_size, b.peak_fleet_size);
  EXPECT_EQ(a.mean_fleet_size, b.mean_fleet_size);
}

TEST(Elastic, ShrinkDrainsBeforeRetiringAndDropsNothing) {
  // Load that collapses after a burst: the fleet grows into the burst and
  // must shrink afterwards.  Draining means every dispatched request still
  // completes — nothing is lost, and the retired capacity shows up as a
  // mean fleet size strictly between the floor and the peak.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const double capacity = fleet_capacity_qps(catalog, "tron", 2, 8);
  TraceConfig burst_cfg;
  burst_cfg.offered_qps = 3.0 * capacity;
  burst_cfg.request_count = 6000;
  burst_cfg.seed = 97;
  std::vector<Request> trace = generate_trace(catalog, burst_cfg);
  // Quiet tail at 5% load: the autoscaler must give the capacity back.
  TraceConfig tail_cfg;
  tail_cfg.offered_qps = 0.05 * capacity;
  tail_cfg.request_count = 4000;
  tail_cfg.seed = 98;
  const double burst_end = trace.back().arrival_s;
  for (const Request& r : generate_trace(catalog, tail_cfg)) {
    trace.push_back({r.id + burst_cfg.request_count, burst_end + 1e-4 + r.arrival_s,
                     r.workload});
  }

  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.autoscaler.policy = AutoscalerPolicy::kQueueDepth;
  sim.autoscaler.max_slots = 8;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_EQ(m.completed, trace.size());  // drain-before-retire loses nothing
  EXPECT_GT(m.autoscale_grows, 0u);
  EXPECT_GT(m.autoscale_shrinks, 0u);
  EXPECT_GT(m.peak_fleet_size, m.initial_fleet_size);
  EXPECT_LT(m.final_fleet_size, m.peak_fleet_size);  // capacity was returned
  EXPECT_GT(m.mean_fleet_size, static_cast<double>(m.final_fleet_size));
  EXPECT_LT(m.mean_fleet_size, static_cast<double>(m.peak_fleet_size));
}

TEST(Elastic, GrowScaleInstantiatesScaledRegistryVariants) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 2.0, 10000, 99);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.autoscaler.policy = AutoscalerPolicy::kQueueDepth;
  sim.autoscaler.max_slots = 8;
  sim.autoscaler.grow_scale = 0.5;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_EQ(m.completed, trace.size());
  EXPECT_GT(m.autoscale_grows, 0u);
}

TEST(Elastic, MixedFleetScalesPerFamily) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  const FleetConfig fleet = FleetConfig::cycled({"tron", "ghost"}, 2);
  TraceConfig cfg;
  cfg.offered_qps = 2.0 * fleet_capacity_qps(catalog, fleet, 8);
  cfg.request_count = 12000;
  cfg.seed = 100;
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.autoscaler.policy = AutoscalerPolicy::kQueueDepth;
  sim.autoscaler.max_slots = 6;
  const FleetMetrics m = simulate_trace(fleet, catalog, generate_trace(catalog, cfg),
                                  SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_EQ(m.completed, 12000u);
  EXPECT_GT(m.autoscale_grows, 0u);
  EXPECT_GT(m.peak_fleet_size, 2u);
}

// ---------------------------------------------------------------------------
// Registry scaled-spec helper
// ---------------------------------------------------------------------------

TEST(ScaledSpecName, CanonicalFormsAndCompounding) {
  EXPECT_EQ(arch::scaled_spec_name("tron", 0.5), "tron@0.5");
  EXPECT_EQ(arch::scaled_spec_name("tron", 1.0), "tron");
  EXPECT_EQ(arch::scaled_spec_name("ghost-eco", 2.0), "ghost-eco@2");
  EXPECT_EQ(arch::scaled_spec_name("tron@2", 0.5), "tron");   // compounds to 1
  EXPECT_EQ(arch::scaled_spec_name("tron@0.5", 0.5), "tron@0.25");
  EXPECT_THROW((void)arch::scaled_spec_name("bort", 0.5), InvalidArgument);
  EXPECT_THROW((void)arch::scaled_spec_name("tron", 0.0), InvalidArgument);
  EXPECT_THROW((void)arch::scaled_spec_name("tron", -2.0), InvalidArgument);
  // Round trip: the scaled name is itself a valid registry spec, including
  // tiny scales that must not collapse to "@0".
  EXPECT_NO_THROW((void)arch::make_accelerator(arch::scaled_spec_name("tron", 0.5)));
  EXPECT_EQ(arch::scaled_spec_name("tron", 1e-7), "tron@1e-07");
  EXPECT_NO_THROW((void)arch::make_accelerator(arch::scaled_spec_name("tron", 1e-7)));
}

// ---------------------------------------------------------------------------
// Campaign integration
// ---------------------------------------------------------------------------

TEST(ElasticCampaign, AutoscalerAxisExpandsTheGrid) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.8 * fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.autoscalers = {AutoscalerPolicy::kNone, AutoscalerPolicy::kQueueDepth};
  cfg.autoscale.max_slots = 6;
  cfg.requests_per_point = 3000;
  cfg.seed = 29;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].autoscaler, AutoscalerPolicy::kNone);
  EXPECT_EQ(points[1].autoscaler, AutoscalerPolicy::kQueueDepth);
  EXPECT_EQ(points[0].metrics.autoscale_grows, 0u);
  EXPECT_EQ(points[0].metrics.tenants.size(), catalog.size());
}

TEST(ElasticCampaign, ValidationNamesAutoscalerFields) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig cfg;
  cfg.qps = {1000.0};
  cfg.requests_per_point = 100;
  cfg.autoscalers.clear();
  try {
    (void)run_campaign(cfg, catalog);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("autoscalers"), std::string::npos) << e.what();
  }
  cfg.autoscalers = {AutoscalerPolicy::kQueueDepth};
  cfg.autoscale.min_slots = 0;
  EXPECT_THROW((void)run_campaign(cfg, catalog), InvalidArgument);
}

}  // namespace
}  // namespace lumos::serve
