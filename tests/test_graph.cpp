// Tests for the graph substrate: CSR invariants, generators, dataset
// stand-ins, buffer-and-partition tiling, and workload balancing.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace lumos::graph {
namespace {

TEST(Csr, BuildsFromEdgeList) {
  const CsrGraph g(4, {{0, 1}, {1, 2}, {2, 3}}, /*symmetrize=*/false);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Csr, SymmetrizeAddsReverseEdges) {
  const CsrGraph g(3, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Csr, DuplicateEdgesMerged) {
  const CsrGraph g(3, {{0, 1}, {0, 1}, {0, 1}}, false);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Csr, SelfLoopNotDoubledBySymmetrize) {
  const CsrGraph g(2, {{0, 0}}, true);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Csr, AdjacencySorted) {
  const CsrGraph g(5, {{0, 4}, {0, 1}, {0, 3}}, false);
  const auto n = g.neighbors(0);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_TRUE(n[0] < n[1] && n[1] < n[2]);
}

TEST(Csr, RowPtrIsPrefixSum) {
  const CsrGraph g(4, {{0, 1}, {0, 2}, {2, 3}}, false);
  const auto rp = g.row_ptr();
  ASSERT_EQ(rp.size(), 5u);
  EXPECT_EQ(rp[0], 0u);
  EXPECT_EQ(rp.back(), g.edge_count());
  for (std::size_t i = 1; i < rp.size(); ++i) EXPECT_GE(rp[i], rp[i - 1]);
}

TEST(Csr, OutOfRangeEdgeRejected) {
  EXPECT_THROW(CsrGraph(2, {{0, 5}}, false), lumos::InvalidArgument);
}

TEST(Csr, DegreeStatsConsistent) {
  const CsrGraph g(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}, true);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_NEAR(g.average_degree(), 8.0 / 4.0, 1e-12);
  EXPECT_NEAR(g.density(), 8.0 / 16.0, 1e-12);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const CsrGraph g = erdos_renyi(100, 250, 1);
  EXPECT_EQ(g.node_count(), 100u);
  EXPECT_EQ(g.edge_count(), 500u);  // symmetrised
}

TEST(ErdosRenyi, NoSelfLoopsOrDuplicates) {
  const CsrGraph g = erdos_renyi(50, 100, 2);
  for (NodeId v = 0; v < 50; ++v) {
    std::set<NodeId> seen;
    for (const NodeId u : g.neighbors(v)) {
      EXPECT_NE(u, v);
      EXPECT_TRUE(seen.insert(u).second);
    }
  }
}

TEST(ErdosRenyi, DeterministicPerSeed) {
  const CsrGraph a = erdos_renyi(64, 128, 7);
  const CsrGraph b = erdos_renyi(64, 128, 7);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; v < 64; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(ErdosRenyi, TooManyEdgesRejected) {
  EXPECT_THROW((void)erdos_renyi(4, 100, 1), lumos::InvalidArgument);
}

TEST(Rmat, ProducesSkewedDegrees) {
  const CsrGraph g = rmat(10, 8, {}, 3);
  EXPECT_EQ(g.node_count(), 1024u);
  EXPECT_GT(g.edge_count(), 1000u);
  // Power-law-ish: the max degree far exceeds the average.
  EXPECT_GT(static_cast<double>(g.max_degree()), 5.0 * g.average_degree());
}

TEST(Rmat, UniformParamsApproachErdosRenyi) {
  const CsrGraph g = rmat(9, 8, {0.25, 0.25, 0.25}, 4);
  // With uniform quadrant probabilities the skew collapses.
  EXPECT_LT(static_cast<double>(g.max_degree()), 6.0 * g.average_degree());
}

TEST(Datasets, PublishedDimensions) {
  const GraphDataset cora = synthetic_cora();
  EXPECT_EQ(cora.graph.node_count(), 2708u);
  EXPECT_EQ(cora.graph.edge_count(), 2u * 5429u);
  EXPECT_EQ(cora.feature_dim, 1433u);
  EXPECT_EQ(cora.class_count, 7u);

  const GraphDataset cs = synthetic_citeseer();
  EXPECT_EQ(cs.graph.node_count(), 3327u);
  EXPECT_EQ(cs.feature_dim, 3703u);
  EXPECT_EQ(cs.class_count, 6u);

  const GraphDataset pm = synthetic_pubmed();
  EXPECT_EQ(pm.graph.node_count(), 19717u);
  EXPECT_EQ(pm.graph.edge_count(), 2u * 44338u);
  EXPECT_EQ(pm.feature_dim, 500u);
  EXPECT_EQ(pm.class_count, 3u);
}

TEST(Datasets, ZooHasThree) {
  EXPECT_EQ(gnn_dataset_zoo().size(), 3u);
}

TEST(Datasets, ArxivDimensions) {
  const GraphDataset ds = synthetic_arxiv();
  EXPECT_EQ(ds.graph.node_count(), 169343u);
  EXPECT_EQ(ds.graph.edge_count(), 2u * 1166243u);
  EXPECT_EQ(ds.feature_dim, 128u);
  EXPECT_EQ(ds.class_count, 40u);
}

TEST(Partition, CoversEveryEdgeExactlyOnce) {
  const CsrGraph g = erdos_renyi(200, 600, 5);
  const PartitionSchedule s = partition(g, {8, 64});
  EXPECT_EQ(s.covered_edges(), g.edge_count());
}

TEST(Partition, BlockCountsMatchCeilDiv) {
  const CsrGraph g = erdos_renyi(100, 200, 6);
  const PartitionSchedule s = partition(g, {8, 32});
  EXPECT_EQ(s.output_block_count, 13u);  // ceil(100/8)
  EXPECT_EQ(s.input_block_count, 4u);    // ceil(100/32)
}

TEST(Partition, TilesOrderedAndInRange) {
  const CsrGraph g = erdos_renyi(100, 300, 7);
  const PartitionSchedule s = partition(g, {4, 16});
  for (std::size_t i = 1; i < s.tiles.size(); ++i) {
    const auto& a = s.tiles[i - 1];
    const auto& b = s.tiles[i];
    EXPECT_TRUE(a.output_block < b.output_block ||
                (a.output_block == b.output_block && a.input_block < b.input_block));
  }
  for (const auto& t : s.tiles) {
    EXPECT_LT(t.output_block, s.output_block_count);
    EXPECT_LT(t.input_block, s.input_block_count);
    EXPECT_GT(t.edge_count, 0u);
  }
}

TEST(Partition, RefetchFactorAtLeastOneWhenConnected) {
  const CsrGraph g = erdos_renyi(128, 512, 8);
  const PartitionSchedule s = partition(g, {8, 32});
  EXPECT_GE(s.refetch_factor(), 1.0);
}

TEST(Partition, BiggerInputBlocksReduceRefetch) {
  const CsrGraph g = erdos_renyi(512, 4096, 9);
  const double small = partition(g, {8, 32}).refetch_factor();
  const double big = partition(g, {8, 256}).refetch_factor();
  EXPECT_LE(big, small);
}

TEST(Sampling, CapsEveryDegree) {
  const CsrGraph g = rmat(10, 8, {}, 17);
  const CsrGraph s = sample_neighbors(g, 4, 1);
  EXPECT_EQ(s.node_count(), g.node_count());
  for (NodeId v = 0; v < s.node_count(); ++v) {
    EXPECT_LE(s.degree(v), 4u);
    EXPECT_LE(s.degree(v), g.degree(v));
  }
}

TEST(Sampling, KeepsSmallNeighbourhoodsIntact) {
  const CsrGraph g(4, {{0, 1}, {0, 2}, {3, 0}}, false);
  const CsrGraph s = sample_neighbors(g, 8, 2);
  EXPECT_EQ(s.edge_count(), g.edge_count());
  EXPECT_EQ(s.degree(0), 2u);
}

TEST(Sampling, SampledNeighboursComeFromOriginal) {
  const CsrGraph g = erdos_renyi(100, 600, 19);
  const CsrGraph s = sample_neighbors(g, 3, 3);
  for (NodeId v = 0; v < s.node_count(); ++v) {
    const auto orig = g.neighbors(v);
    for (const NodeId u : s.neighbors(v)) {
      EXPECT_TRUE(std::find(orig.begin(), orig.end(), u) != orig.end()) << v << "->" << u;
    }
  }
}

TEST(Sampling, DeterministicPerSeed) {
  const CsrGraph g = rmat(9, 8, {}, 23);
  const CsrGraph a = sample_neighbors(g, 5, 7);
  const CsrGraph b = sample_neighbors(g, 5, 7);
  EXPECT_EQ(a.edge_count(), b.edge_count());
}

TEST(Sampling, ReducesGhostAggregationWork) {
  // The paper's motivation for sampling: bounded fan-in per output vertex.
  const CsrGraph g = rmat(10, 16, {}, 29);
  const CsrGraph s = sample_neighbors(g, 8, 11);
  EXPECT_LT(s.edge_count(), g.edge_count());
  EXPECT_LE(s.max_degree(), 8u);
}

TEST(Balance, DegreeSortedNeverWorse) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CsrGraph g = rmat(9, 8, {}, seed);
    const double naive = lane_imbalance(g, 16, /*degree_sorted=*/false);
    const double balanced = lane_imbalance(g, 16, /*degree_sorted=*/true);
    EXPECT_LE(balanced, naive + 1e-12) << "seed " << seed;
    EXPECT_GE(balanced, 1.0 - 1e-12);
  }
}

TEST(Balance, SkewedGraphsBenefitMost) {
  const CsrGraph skewed = rmat(10, 8, {}, 11);
  const double gain = lane_imbalance(skewed, 16, false) / lane_imbalance(skewed, 16, true);
  EXPECT_GT(gain, 1.02);  // balancing visibly helps a power-law graph
}

// Lane-count sweep: imbalance of the balanced assignment stays modest.
class LaneSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LaneSweep, BalancedImbalanceBounded) {
  const CsrGraph g = rmat(10, 8, {}, 13);
  const double b = lane_imbalance(g, GetParam(), true);
  EXPECT_GE(b, 1.0 - 1e-12);
  EXPECT_LT(b, 1.6);
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{8},
                                           std::size_t{16}, std::size_t{64}));

}  // namespace
}  // namespace lumos::graph
