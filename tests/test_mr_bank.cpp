// Tests for the optical compute primitives: MR bank dot products, bank-array
// matvecs, and coherent summation — both fidelity (vs exact math) and cost
// model invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "photonics/mr_bank.hpp"

namespace lumos::phot {
namespace {

MrBankConfig bank_config(std::size_t k = 16) {
  MrBankConfig c;
  c.wavelength_count = k;
  c.heterodyne.channel_count = k;
  return c;
}

AnalogNoiseConfig no_noise() {
  AnalogNoiseConfig n;
  n.dac_quantization = false;
  n.mr_tuning_error = false;
  n.heterodyne_crosstalk = false;
  n.detector_noise = false;
  n.adc_quantization = false;
  return n;
}

TEST(MrBank, ExactDotMatchesManual) {
  const std::vector<double> a{0.5, -0.25, 1.0};
  const std::vector<double> w{0.2, 0.4, -0.6};
  EXPECT_NEAR(MrBank::exact_dot(a, w), 0.1 - 0.1 - 0.6, 1e-12);
}

TEST(MrBank, NoiselessDotTracksExact) {
  const MrBank bank(bank_config());
  Rng rng(1);
  const std::vector<double> a{0.5, -0.25, 0.8, 0.1, -0.9, 0.3, 0.0, 0.7};
  const std::vector<double> w{0.2, 0.4, -0.6, 0.9, 0.5, -0.1, 0.3, -0.8};
  const double got = bank.dot(a, w, rng, no_noise());
  const double want = MrBank::exact_dot(a, w);
  // The only residual is the MR transmission window renormalisation.
  EXPECT_NEAR(got, want, 0.05 * 8.0);
}

TEST(MrBank, FullNoiseDotWithinBudget) {
  const MrBank bank(bank_config());
  Rng rng(2);
  const AnalogNoiseConfig noise;  // all sources on
  std::vector<double> a(16), w(16);
  Rng data(3);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = data.uniform(-1.0, 1.0);
    w[i] = data.uniform(-1.0, 1.0);
  }
  double worst = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    worst = std::max(worst, std::fabs(bank.dot(a, w, rng, noise) - MrBank::exact_dot(a, w)));
  }
  // 8-bit grid over a length-16 dot: error stays within a few LSB-equivalents.
  EXPECT_LT(worst, 0.8);
}

TEST(MrBank, DotIsUnbiasedUnderNoise) {
  const MrBank bank(bank_config());
  Rng rng(4);
  const AnalogNoiseConfig noise;
  std::vector<double> a(16, 0.5), w(16, 0.5);
  double sum = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) sum += bank.dot(a, w, rng, noise);
  EXPECT_NEAR(sum / trials, MrBank::exact_dot(a, w), 0.1);
}

TEST(MrBank, MismatchedSizesRejected) {
  const MrBank bank(bank_config());
  Rng rng(5);
  const std::vector<double> a{0.1, 0.2};
  const std::vector<double> w{0.1};
  EXPECT_THROW((void)bank.dot(a, w, rng, no_noise()), lumos::InvalidArgument);
}

TEST(MrBank, OversizedVectorRejected) {
  const MrBank bank(bank_config(4));
  Rng rng(6);
  const std::vector<double> v(8, 0.1);
  EXPECT_THROW((void)bank.dot(v, v, rng, no_noise()), lumos::InvalidArgument);
}

TEST(MrBank, OutOfRangeValuesRejected) {
  const MrBank bank(bank_config());
  Rng rng(7);
  const std::vector<double> a{1.5};
  const std::vector<double> w{0.5};
  EXPECT_THROW((void)bank.dot(a, w, rng, no_noise()), lumos::InvalidArgument);
}

TEST(MrBank, DotCostPositiveAndRateLimited) {
  const MrBank bank(bank_config());
  const BankOpCost c = bank.dot_cost();
  EXPECT_GT(c.latency_s, 1.0 / bank.config().symbol_rate_hz - 1e-15);
  EXPECT_GT(c.dynamic_energy_j, 0.0);
  EXPECT_GT(c.static_power_w, 0.0);
}

TEST(MrBankArray, ExactMatvecMatchesManual) {
  // x = [1, 2], W = [[1, 2, 3], [4, 5, 6]] -> y = [9, 12, 15].
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto y = MrBankArray::exact_matvec(x, w, 3);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(MrBankArray, NoiselessMatvecTracksExact) {
  const MrBankArray array(bank_config(8), 4);
  Rng rng(8);
  std::vector<double> x(8), w(8 * 4);
  Rng data(9);
  for (auto& v : x) v = data.uniform(-1.0, 1.0);
  for (auto& v : w) v = data.uniform(-1.0, 1.0);
  const auto got = array.matvec(x, w, rng, no_noise());
  const auto want = MrBankArray::exact_matvec(x, w, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(got[i], want[i], 0.4);
}

TEST(MrBankArray, PassEnergiesScaleWithGeometry) {
  const MrBankArray small(bank_config(8), 4);
  const MrBankArray big(bank_config(8), 16);
  const auto es = small.pass_energies();
  const auto eb = big.pass_energies();
  EXPECT_DOUBLE_EQ(es.input_dac_j, eb.input_dac_j);     // inputs shared per row
  EXPECT_NEAR(eb.weight_dac_j, 4.0 * es.weight_dac_j, 1e-18);
  EXPECT_NEAR(eb.adc_j, 4.0 * es.adc_j, 1e-18);
  EXPECT_NEAR(eb.laser_j, 4.0 * es.laser_j, 1e-18);
}

TEST(MrBankArray, SharedInputDacsCheaper) {
  const MrBankArray array(bank_config(8), 8);
  EXPECT_LT(array.matvec_cost(true).dynamic_energy_j,
            array.matvec_cost(false).dynamic_energy_j);
}

TEST(CoherentSum, ExactSumMatches) {
  const std::vector<double> v{0.1, -0.2, 0.3, 0.4};
  EXPECT_NEAR(CoherentSummationUnit::exact_sum(v), 0.6, 1e-12);
}

TEST(CoherentSum, NoiselessSumTracksExact) {
  const CoherentSummationUnit unit(bank_config(), HomodyneConfig{}, 8);
  Rng rng(10);
  const std::vector<double> v{0.5, -0.25, 0.75, 0.1, -0.4, 0.3, 0.2, -0.1};
  EXPECT_NEAR(unit.sum(v, rng, no_noise()), CoherentSummationUnit::exact_sum(v), 1e-9);
}

TEST(CoherentSum, LinearityUnderScaling) {
  const CoherentSummationUnit unit(bank_config(), HomodyneConfig{}, 4);
  Rng rng(11);
  const std::vector<double> v{0.2, 0.3, -0.1, 0.15};
  std::vector<double> half = v;
  for (double& x : half) x *= 0.5;
  EXPECT_NEAR(unit.sum(half, rng, no_noise()),
              0.5 * unit.sum(v, rng, no_noise()), 1e-9);
}

TEST(CoherentSum, NoisySumWithinHomodyneBound) {
  const CoherentSummationUnit unit(bank_config(), HomodyneConfig{}, 8);
  const HomodyneCrosstalkModel hm{HomodyneConfig{}};
  Rng rng(12);
  const AnalogNoiseConfig noise;
  const std::vector<double> v{0.5, 0.25, 0.75, 0.1, 0.4, 0.3, 0.2, 0.1};
  const double exact = CoherentSummationUnit::exact_sum(v);
  for (int t = 0; t < 50; ++t) {
    const double got = unit.sum(v, rng, noise);
    // Worst-case homodyne error + quantisation + detector noise margin.
    EXPECT_NEAR(got, exact, exact * hm.worst_case_relative_error() + 0.2);
  }
}

TEST(CoherentSum, TooManyBranchesRejected) {
  const CoherentSummationUnit unit(bank_config(), HomodyneConfig{}, 2);
  Rng rng(13);
  const std::vector<double> v{0.1, 0.2, 0.3};
  EXPECT_THROW((void)unit.sum(v, rng, no_noise()), lumos::InvalidArgument);
}

TEST(CoherentSum, CostScalesWithBranches) {
  const CoherentSummationUnit small(bank_config(), HomodyneConfig{}, 4);
  const CoherentSummationUnit big(bank_config(), HomodyneConfig{}, 16);
  EXPECT_LT(small.sum_cost().dynamic_energy_j, big.sum_cost().dynamic_energy_j);
}

// Fidelity sweep across bank widths: the noisy relative error stays bounded
// as the dot-product length grows (noise averages, crosstalk accumulates).
class WidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WidthSweep, RelativeErrorBounded) {
  const std::size_t k = GetParam();
  const MrBank bank(bank_config(k));
  Rng rng(100 + k);
  Rng data(200 + k);
  const AnalogNoiseConfig noise;
  std::vector<double> a(k), w(k);
  for (std::size_t i = 0; i < k; ++i) {
    a[i] = data.uniform(0.2, 1.0);  // keep the exact dot well away from zero
    w[i] = data.uniform(0.2, 1.0);
  }
  const double exact = MrBank::exact_dot(a, w);
  double err = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    err += std::fabs(bank.dot(a, w, rng, noise) - exact) / std::fabs(exact);
  }
  EXPECT_LT(err / trials, 0.15) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{4}, std::size_t{8},
                                           std::size_t{16}, std::size_t{32}));

}  // namespace
}  // namespace lumos::phot
