// Tests for the VCSEL / laser-power-budget models and the SOA nonlinearity.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "photonics/laser.hpp"
#include "photonics/soa.hpp"

namespace lumos::phot {
namespace {

TEST(Vcsel, ElectricalPowerAboveThreshold) {
  const Vcsel v({});
  const double p = v.electrical_power(1e-3);
  EXPECT_GT(p, v.config().threshold_power_w);
  EXPECT_NEAR(p, v.config().threshold_power_w + 1e-3 / v.config().wall_plug_efficiency,
              1e-12);
}

TEST(Vcsel, EmitLinearInDrive) {
  const Vcsel v({});
  EXPECT_NEAR(v.emit(0.5), 0.5 * v.config().max_optical_power_w, 1e-15);
  EXPECT_DOUBLE_EQ(v.emit(0.0), 0.0);
}

TEST(Vcsel, RejectsOverdrive) {
  const Vcsel v({});
  EXPECT_THROW((void)v.electrical_power(v.config().max_optical_power_w * 2.0),
               lumos::InvalidArgument);
  EXPECT_THROW((void)v.emit(1.5), lumos::InvalidArgument);
}

TEST(LossStack, TotalSumsComponents) {
  LossStack l;
  l.coupler_db = 1.0;
  l.waveguide_db_per_cm = 2.0;
  l.path_length_cm = 0.5;
  l.per_mr_insertion_db = 0.05;
  l.mr_count = 10;
  l.splitter_db = 0.2;
  l.splitter_count = 2;
  l.mux_demux_db = 1.0;
  l.penalty_margin_db = 1.0;
  EXPECT_NEAR(l.total_db(), 1.0 + 1.0 + 0.5 + 0.4 + 1.0 + 1.0, 1e-12);
}

TEST(LaserBudget, CoversLossStack) {
  const Photodetector pd{PhotodetectorConfig{}};
  LossStack losses;
  const VcselConfig vcsel;
  const LaserBudget b = size_laser(pd, losses, 8, vcsel);
  EXPECT_TRUE(b.feasible);
  // Launch power = sensitivity amplified by the total loss.
  EXPECT_NEAR(b.required_launch_power_w,
              b.detector_sensitivity_w * units::db_to_linear(losses.total_db()), 1e-15);
  EXPECT_GT(b.electrical_power_w, 0.0);
}

TEST(LaserBudget, MoreLossNeedsMorePower) {
  const Photodetector pd{PhotodetectorConfig{}};
  LossStack small;
  LossStack big = small;
  big.path_length_cm = 5.0;
  const VcselConfig v;
  EXPECT_GT(size_laser(pd, big, 8, v).required_launch_power_w,
            size_laser(pd, small, 8, v).required_launch_power_w);
}

TEST(LaserBudget, MoreBitsNeedMorePower) {
  const Photodetector pd{PhotodetectorConfig{}};
  const LossStack losses;
  const VcselConfig v;
  EXPECT_GT(size_laser(pd, losses, 8, v).required_launch_power_w,
            size_laser(pd, losses, 4, v).required_launch_power_w);
}

TEST(LaserBudget, InfeasibleWhenBeyondSaturation) {
  const Photodetector pd{PhotodetectorConfig{}};
  LossStack heavy;
  heavy.path_length_cm = 40.0;  // 60 dB of waveguide loss
  VcselConfig v;
  const LaserBudget b = size_laser(pd, heavy, 8, v);
  EXPECT_FALSE(b.feasible);
}

TEST(Soa, GainCompressesTowardSaturation) {
  const Soa soa({});
  const double g_small = soa.gain_at(1e-7);
  const double g_large = soa.gain_at(1e-3);
  EXPECT_GT(g_small, g_large);
  EXPECT_NEAR(g_small, units::db_to_linear(soa.config().small_signal_gain_db), 0.5);
}

TEST(Soa, AmplifyMonotone) {
  const Soa soa({});
  double prev = 0.0;
  for (double p = 1e-8; p < 1e-2; p *= 2.0) {
    const double out = soa.amplify(p);
    EXPECT_GT(out, prev);
    prev = out;
  }
}

TEST(Soa, AmplifySolvesImplicitEquation) {
  const Soa soa({});
  const double pin = 5e-4;
  const double pout = soa.amplify(pin);
  const double g0 = units::db_to_linear(soa.config().small_signal_gain_db);
  const double residual =
      pout - pin * g0 / (1.0 + pout / soa.config().saturation_output_power_w);
  EXPECT_NEAR(residual, 0.0, 1e-12);
}

TEST(Soa, IdealActivationsMatchMath) {
  EXPECT_DOUBLE_EQ(Soa::ideal(OpticalActivation::kRelu, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(Soa::ideal(OpticalActivation::kRelu, 0.5), 0.5);
  EXPECT_NEAR(Soa::ideal(OpticalActivation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(Soa::ideal(OpticalActivation::kTanh, 1.0), std::tanh(1.0), 1e-12);
}

TEST(Soa, ReluApproximationTight) {
  const Soa soa({});
  EXPECT_LT(soa.approximation_error(OpticalActivation::kRelu), 0.05);
  EXPECT_DOUBLE_EQ(soa.activate(OpticalActivation::kRelu, -0.7), 0.0);
}

TEST(Soa, SigmoidEndpointsCalibrated) {
  const Soa soa({});
  EXPECT_NEAR(soa.activate(OpticalActivation::kSigmoid, -1.0),
              Soa::ideal(OpticalActivation::kSigmoid, -1.0), 1e-6);
  EXPECT_NEAR(soa.activate(OpticalActivation::kSigmoid, 1.0),
              Soa::ideal(OpticalActivation::kSigmoid, 1.0), 1e-6);
  EXPECT_LT(soa.approximation_error(OpticalActivation::kSigmoid), 0.12);
}

TEST(Soa, TanhOddSymmetric) {
  const Soa soa({});
  for (const double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(soa.activate(OpticalActivation::kTanh, -x),
                -soa.activate(OpticalActivation::kTanh, x), 1e-12);
  }
  EXPECT_LT(soa.approximation_error(OpticalActivation::kTanh), 0.15);
}

TEST(Soa, ActivationsMonotone) {
  const Soa soa({});
  for (const auto fn : {OpticalActivation::kRelu, OpticalActivation::kSigmoid,
                        OpticalActivation::kTanh}) {
    double prev = -1e300;
    for (double x = -1.0; x <= 1.0; x += 0.05) {
      const double y = soa.activate(fn, x);
      EXPECT_GE(y, prev - 1e-12);
      prev = y;
    }
  }
}

TEST(Soa, InputRangeValidated) {
  const Soa soa({});
  EXPECT_THROW((void)soa.activate(OpticalActivation::kRelu, 1.5), lumos::InvalidArgument);
  EXPECT_THROW((void)soa.amplify(-1e-3), lumos::InvalidArgument);
}

}  // namespace
}  // namespace lumos::phot
