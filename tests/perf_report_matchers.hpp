// Shared test helper: exhaustive bit-identity check over PerfReport and its
// breakdown, used by the serve and arch parity suites.  One copy so a new
// PerfBreakdown field only needs adding here to stay covered everywhere.
#pragma once

#include <gtest/gtest.h>

#include "common/perf.hpp"

namespace lumos::testing {

inline void expect_reports_identical(const PerfReport& a, const PerfReport& b) {
  EXPECT_EQ(a.latency_s, b.latency_s);
  EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j);
  EXPECT_EQ(a.static_energy_j, b.static_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.static_power_w, b.static_power_w);
  EXPECT_EQ(a.op_count, b.op_count);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.breakdown.matmul_time_s, b.breakdown.matmul_time_s);
  EXPECT_EQ(a.breakdown.softmax_time_s, b.breakdown.softmax_time_s);
  EXPECT_EQ(a.breakdown.elementwise_time_s, b.breakdown.elementwise_time_s);
  EXPECT_EQ(a.breakdown.aggregation_time_s, b.breakdown.aggregation_time_s);
  EXPECT_EQ(a.breakdown.memory_stall_s, b.breakdown.memory_stall_s);
  EXPECT_EQ(a.breakdown.laser_dac_adc_energy_j, b.breakdown.laser_dac_adc_energy_j);
  EXPECT_EQ(a.breakdown.partial_sum_energy_j, b.breakdown.partial_sum_energy_j);
  EXPECT_EQ(a.breakdown.softmax_energy_j, b.breakdown.softmax_energy_j);
  EXPECT_EQ(a.breakdown.elementwise_energy_j, b.breakdown.elementwise_energy_j);
  EXPECT_EQ(a.breakdown.aggregation_energy_j, b.breakdown.aggregation_energy_j);
  EXPECT_EQ(a.breakdown.sram_energy_j, b.breakdown.sram_energy_j);
  EXPECT_EQ(a.breakdown.dram_energy_j, b.breakdown.dram_energy_j);
}

}  // namespace lumos::testing
