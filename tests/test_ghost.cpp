// Tests for the GHOST accelerator: reduce/update units, the performance and
// memory model with its scheduling optimisations, and functional fidelity of
// the photonic GNN forward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "ghost/accelerator.hpp"

namespace lumos::ghost {
namespace {

phot::AnalogNoiseConfig no_noise() {
  phot::AnalogNoiseConfig n;
  n.dac_quantization = false;
  n.mr_tuning_error = false;
  n.heterodyne_crosstalk = false;
  n.detector_noise = false;
  n.adc_quantization = false;
  return n;
}

TEST(ReduceUnit, SumMeanMatchExactNoiseless) {
  const ReduceUnit unit(default_ghost_config());
  Rng rng(1);
  const std::vector<double> v{0.5, -0.25, 0.75, 0.1, -0.4};
  EXPECT_NEAR(unit.reduce(v, gnn::Reduction::kSum, rng, no_noise()),
              ReduceUnit::exact_reduce(v, gnn::Reduction::kSum), 1e-9);
  EXPECT_NEAR(unit.reduce(v, gnn::Reduction::kMean, rng, no_noise()),
              ReduceUnit::exact_reduce(v, gnn::Reduction::kMean), 1e-9);
}

TEST(ReduceUnit, MaxMatchesExactNoiseless) {
  const ReduceUnit unit(default_ghost_config());
  Rng rng(2);
  const std::vector<double> v{0.5, -0.25, 0.75, 0.1, -0.4};
  EXPECT_DOUBLE_EQ(unit.reduce(v, gnn::Reduction::kMax, rng, no_noise()), 0.75);
}

TEST(ReduceUnit, NoisyMaxSelectsNearMaximum) {
  const ReduceUnit unit(default_ghost_config());
  Rng rng(3);
  const std::vector<double> v{0.1, 0.9, 0.3, 0.88, 0.2};
  for (int t = 0; t < 50; ++t) {
    const double m = unit.reduce(v, gnn::Reduction::kMax, rng, phot::AnalogNoiseConfig{});
    // Detector noise can confuse 0.9 vs 0.88, never 0.9 vs 0.1.
    EXPECT_GE(m, 0.85);
  }
}

TEST(ReduceUnit, ChunksOversizedNeighbourLists) {
  GhostConfig cfg = default_ghost_config();
  cfg.reduce_branches = 4;
  const ReduceUnit unit(cfg);
  Rng rng(4);
  std::vector<double> v(19, 0.05);  // 5 chunks of <=4
  EXPECT_NEAR(unit.reduce(v, gnn::Reduction::kSum, rng, no_noise()), 19 * 0.05, 1e-9);
  EXPECT_EQ(unit.passes_for(19), 5u);
  EXPECT_EQ(unit.passes_for(4), 1u);
  EXPECT_EQ(unit.passes_for(0), 0u);
}

TEST(ReduceUnit, EmptyInputIsZero) {
  const ReduceUnit unit(default_ghost_config());
  Rng rng(5);
  EXPECT_DOUBLE_EQ(unit.reduce({}, gnn::Reduction::kSum, rng, no_noise()), 0.0);
  EXPECT_DOUBLE_EQ(ReduceUnit::exact_reduce({}, gnn::Reduction::kMax), 0.0);
}

TEST(UpdateUnit, ReluCloseToIdeal) {
  const UpdateUnit unit(default_ghost_config());
  EXPECT_DOUBLE_EQ(unit.activate_relu(-0.5), 0.0);
  EXPECT_NEAR(unit.activate_relu(0.5), 0.5, 0.05);
}

TEST(UpdateUnit, CostScalesWithElements) {
  const UpdateUnit unit(default_ghost_config());
  EXPECT_NEAR(unit.energy_j(2000), 2.0 * unit.energy_j(1000), 1e-18);
  EXPECT_GE(unit.latency_s(100000), unit.latency_s(100));
  EXPECT_GT(unit.static_power_w(), 0.0);
}

TEST(Estimate, ReportsConsistentAcrossZoo) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::synthetic_cora();
  for (const auto& model : gnn::gnn_model_zoo()) {
    const PerfReport r = acc.estimate(model, ds);
    EXPECT_GT(r.latency_s, 0.0) << model.name;
    EXPECT_GT(r.dynamic_energy_j, 0.0);
    EXPECT_EQ(r.op_count, gnn::model_op_count(model, ds));
    EXPECT_EQ(r.platform, "GHOST");
    EXPECT_NEAR(r.total_energy_j, r.dynamic_energy_j + r.static_energy_j, 1e-12);
  }
}

TEST(Estimate, BiggerGraphsCostMore) {
  const GhostAccelerator acc(default_ghost_config());
  const auto model = gnn::gcn_model();
  EXPECT_GT(acc.estimate(model, graph::synthetic_pubmed()).latency_s,
            acc.estimate(model, graph::synthetic_cora()).latency_s);
}

TEST(Estimate, PartitioningReducesMemoryTraffic) {
  GhostConfig on = default_ghost_config();
  on.buffer_and_partition = true;
  GhostConfig off = default_ghost_config();
  off.buffer_and_partition = false;
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_citeseer();
  const PerfReport with = GhostAccelerator(on).estimate(model, ds);
  const PerfReport without = GhostAccelerator(off).estimate(model, ds);
  EXPECT_LT(with.breakdown.dram_energy_j, without.breakdown.dram_energy_j);
  EXPECT_LE(with.latency_s, without.latency_s + 1e-12);
}

TEST(Estimate, WeightDacSharingSavesEnergy) {
  GhostConfig on = default_ghost_config();
  on.weight_dac_sharing = true;
  GhostConfig off = default_ghost_config();
  off.weight_dac_sharing = false;
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_cora();
  EXPECT_LT(GhostAccelerator(on).estimate(model, ds).breakdown.laser_dac_adc_energy_j,
            GhostAccelerator(off).estimate(model, ds).breakdown.laser_dac_adc_energy_j);
}

TEST(Estimate, WorkloadBalancingNeverHurtsAggregation) {
  GhostConfig on = default_ghost_config();
  on.workload_balancing = true;
  GhostConfig off = default_ghost_config();
  off.workload_balancing = false;
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_cora();
  EXPECT_LE(GhostAccelerator(on).estimate(model, ds).breakdown.aggregation_time_s,
            GhostAccelerator(off).estimate(model, ds).breakdown.aggregation_time_s + 1e-15);
}

TEST(Estimate, MoreLanesSpeedAggregation) {
  GhostConfig few = default_ghost_config();
  few.lanes = 4;
  GhostConfig many = default_ghost_config();
  many.lanes = 64;
  const auto model = gnn::gin_model();
  const auto ds = graph::synthetic_cora();
  EXPECT_GT(GhostAccelerator(few).estimate(model, ds).breakdown.aggregation_time_s,
            GhostAccelerator(many).estimate(model, ds).breakdown.aggregation_time_s);
}

TEST(Estimate, GatPaysAttentionCosts) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::synthetic_cora();
  const PerfReport gat = acc.estimate(gnn::gat_model(), ds);
  EXPECT_GT(gat.breakdown.softmax_energy_j, 0.0);
  const PerfReport gcn = acc.estimate(gnn::gcn_model(), ds);
  EXPECT_DOUBLE_EQ(gcn.breakdown.softmax_energy_j, 0.0);
}

TEST(Functional, GcnMatchesReference) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gcn_model(), ds, 21);
  Rng data(6);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(7);
  const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, no_noise());
  const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
  EXPECT_EQ(got.rows(), want.rows());
  EXPECT_EQ(got.cols(), want.cols());
  EXPECT_LT(got.relative_error(want), 0.15);
}

TEST(Functional, GraphSageMatchesReference) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::graphsage_model(), ds, 22);
  Rng data(8);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(9);
  const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, no_noise());
  const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
  EXPECT_LT(got.relative_error(want), 0.15);
}

TEST(Functional, GinMatchesReference) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gin_model(), ds, 23);
  Rng data(10);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(11);
  const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, no_noise());
  const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
  EXPECT_LT(got.relative_error(want), 0.15);
}

TEST(Functional, GatMatchesReference) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gat_model(), ds, 24);
  Rng data(12);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(13);
  const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, no_noise());
  const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
  // GAT chains two photonic stages per edge (scores then aggregation).
  EXPECT_LT(got.relative_error(want), 0.30);
}

TEST(Functional, NoisyGcnStaysClose) {
  const GhostAccelerator acc(default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gcn_model(), ds, 25);
  Rng data(14);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(15);
  const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, phot::AnalogNoiseConfig{});
  const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
  EXPECT_LT(got.relative_error(want), 0.5);
}

TEST(StaticPower, ScalesWithLanes) {
  GhostConfig small = default_ghost_config();
  small.lanes = 4;
  GhostConfig big = default_ghost_config();
  big.lanes = 64;
  EXPECT_LT(GhostAccelerator(small).static_power_w(), GhostAccelerator(big).static_power_w());
}

// Dataset sweep: EPB identity and op accounting hold on every dataset.
class DatasetSweep : public ::testing::TestWithParam<int> {};

TEST_P(DatasetSweep, EpbIdentityHolds) {
  const auto datasets = graph::gnn_dataset_zoo();
  const auto& ds = datasets[static_cast<std::size_t>(GetParam())];
  const GhostAccelerator acc(default_ghost_config());
  const PerfReport r = acc.estimate(gnn::graphsage_model(), ds);
  EXPECT_NEAR(r.energy_per_bit_j() * static_cast<double>(r.op_count) * r.bits,
              r.total_energy_j, r.total_energy_j * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetSweep, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace lumos::ghost
