// Tests for the traffic layer: TrafficSource pull semantics, open-loop parity
// (Scenario traffic knobs vs an explicit materialised trace), closed-loop
// determinism and session accounting, trace statistics (MMPP long-run offered
// rate and burst-fraction occupancy), per-request sequence-length samplers
// (moments, bounds, bucket grid), the seq-aware estimate cache / scheduler
// buckets, and the shared string<->enum name tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "perf_report_matchers.hpp"
#include "serve/names.hpp"
#include "serve/simulator.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {
namespace {

using lumos::testing::expect_reports_identical;

Scenario base_scenario(WorkloadCatalog catalog, const FleetConfig& fleet) {
  Scenario scenario;
  scenario.fleet = fleet;
  scenario.catalog = std::move(catalog);
  scenario.batch.max_batch = 8;
  return scenario;
}

void expect_same_fleet_metrics(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.goodput_qps, b.goodput_qps);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.estimate_lookups, b.estimate_lookups);
  EXPECT_EQ(a.estimate_misses, b.estimate_misses);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.mean_session_s, b.mean_session_s);
  EXPECT_EQ(a.p50_session_s, b.p50_session_s);
  EXPECT_EQ(a.p99_session_s, b.p99_session_s);
  EXPECT_EQ(a.max_session_s, b.max_session_s);
}

// ---------------------------------------------------------------------------
// TrafficSource pull semantics
// ---------------------------------------------------------------------------

TEST(TrafficSource, OpenLoopPopsTraceInOrderAndExhausts) {
  std::vector<Request> trace{{0, 0.1, 0}, {1, 0.2, 1}, {2, 0.5, 0}};
  OpenLoopSource source(trace);
  EXPECT_EQ(source.total_requests(), 3u);
  EXPECT_EQ(source.next_arrival_time(), 0.1);
  EXPECT_EQ(source.pop_arrival().id, 0u);
  source.on_complete(trace[0], 1.0, CompletionStatus::kOk);  // open loop ignores feedback
  EXPECT_EQ(source.next_arrival_time(), 0.2);
  EXPECT_EQ(source.pop_arrival().id, 1u);
  EXPECT_EQ(source.pop_arrival().id, 2u);
  EXPECT_TRUE(std::isinf(source.next_arrival_time()));
}

TEST(TrafficSource, ClosedLoopIssuesOnePerSessionUntilCompletionFeedback) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  ClosedLoopConfig cfg;
  cfg.sessions = 4;
  cfg.requests_per_session = 2;
  cfg.think_time_mean_s = 1e-3;
  cfg.seed = 5;
  ClosedLoopSource source(catalog, cfg);
  EXPECT_EQ(source.total_requests(), 8u);

  // All four first issues are pending; drain them.
  std::vector<Request> in_flight;
  while (!std::isinf(source.next_arrival_time())) {
    in_flight.push_back(source.pop_arrival());
  }
  ASSERT_EQ(in_flight.size(), 4u);
  // Sessions wait for completions: nothing pending until feedback arrives.
  source.on_complete(in_flight[0], 1.0, CompletionStatus::kOk);
  EXPECT_FALSE(std::isinf(source.next_arrival_time()));
  EXPECT_GE(source.next_arrival_time(), 1.0);  // completion + think
  const Request second = source.pop_arrival();
  EXPECT_EQ(second.session, in_flight[0].session);
  EXPECT_EQ(second.workload, in_flight[0].workload);  // sessions are tenant-pinned
}

// ---------------------------------------------------------------------------
// Open-loop parity: Scenario traffic knobs == explicit materialised trace
// ---------------------------------------------------------------------------

TEST(OpenLoopParity, ScenarioKnobsMatchExplicitTraceBitForBit) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  const FleetConfig fleet = FleetConfig::cycled({"tron", "ghost"}, 4);

  Scenario generated = base_scenario(catalog, fleet);
  generated.traffic.open.offered_qps = 20000.0;
  generated.traffic.open.request_count = 8000;
  generated.traffic.open.seed = 71;

  Scenario explicit_trace = base_scenario(catalog, fleet);
  explicit_trace.trace = generate_trace(catalog, generated.traffic.open);

  expect_same_fleet_metrics(simulate(generated), simulate(explicit_trace));
}

// ---------------------------------------------------------------------------
// Closed loop: determinism, completion accounting, session latencies
// ---------------------------------------------------------------------------

Scenario closed_scenario(std::size_t sessions, std::size_t per_session,
                         double think_s, std::uint64_t seed) {
  Scenario scenario =
      base_scenario(WorkloadCatalog::mixed_default(), FleetConfig::cycled({"tron", "ghost"}, 4));
  scenario.traffic.mode = LoopMode::kClosed;
  scenario.traffic.closed.sessions = sessions;
  scenario.traffic.closed.requests_per_session = per_session;
  scenario.traffic.closed.think_time_mean_s = think_s;
  scenario.traffic.closed.seed = seed;
  return scenario;
}

TEST(ClosedLoop, CompletesEverySessionAndMeasuresSessionLatency) {
  const FleetMetrics m = simulate(closed_scenario(32, 20, 1e-3, 9));
  EXPECT_EQ(m.completed, 32u * 20u);
  EXPECT_EQ(m.sessions, 32u);
  EXPECT_GT(m.mean_session_s, 0.0);
  EXPECT_GE(m.p99_session_s, m.p50_session_s);
  EXPECT_GE(m.max_session_s, m.p99_session_s);
  // A session spans 20 request round trips: its end-to-end latency dominates
  // any single request's latency.
  EXPECT_GT(m.p50_session_s, m.p50_latency_s);
  // Per-tenant completions are whole sessions (each session is pinned to one
  // catalog entry), so every tenant count is a multiple of requests/session.
  std::size_t tenant_total = 0;
  for (const TenantMetrics& t : m.tenants) {
    EXPECT_EQ(t.completed % 20u, 0u) << t.name;
    tenant_total += t.completed;
  }
  EXPECT_EQ(tenant_total, m.completed);
}

TEST(ClosedLoop, RunsAreBitReproducible) {
  const Scenario scenario = closed_scenario(24, 16, 5e-4, 33);
  expect_same_fleet_metrics(simulate(scenario), simulate(scenario));
}

TEST(ClosedLoop, ZeroThinkTimeCompletes) {
  const FleetMetrics m = simulate(closed_scenario(8, 10, 0.0, 3));
  EXPECT_EQ(m.completed, 80u);
}

TEST(ClosedLoop, MoreSessionsRaiseThroughput) {
  // Closed-loop load scales with concurrency: 4x the sessions against the
  // same fleet must push more requests per simulated second.
  const FleetMetrics few = simulate(closed_scenario(8, 16, 1e-3, 13));
  const FleetMetrics many = simulate(closed_scenario(32, 16, 1e-3, 13));
  EXPECT_GT(many.throughput_qps, few.throughput_qps);
}

TEST(ClosedLoop, SeqLenDistributionsFlowThroughSessions) {
  Scenario scenario = closed_scenario(16, 12, 1e-3, 21);
  scenario.catalog.apply_seqlen_dist(SeqLenDist::kLogNormal);
  const FleetMetrics m = simulate(scenario);
  EXPECT_EQ(m.completed, 16u * 12u);
  // Sampled lengths shatter the per-(workload, seq) cache key space: more
  // distinct estimates than the fixed-length run's (workload x batch) grid.
  const FleetMetrics fixed = simulate(closed_scenario(16, 12, 1e-3, 21));
  EXPECT_GT(m.estimate_misses, fixed.estimate_misses);
}

// ---------------------------------------------------------------------------
// Trace statistics (satellite): MMPP offered rate + burst occupancy
// ---------------------------------------------------------------------------

TEST(TraceStats, MmppLongRunRateMatchesOfferedQps) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  TraceConfig cfg;
  cfg.offered_qps = 20000.0;
  cfg.request_count = 300000;
  cfg.process = ArrivalProcess::kBursty;
  cfg.burst_multiplier = 8.0;
  cfg.burst_fraction = 0.25;
  cfg.mean_burst_s = 0.05;
  cfg.seed = 101;
  const std::vector<Request> trace = generate_trace(catalog, cfg);
  const double rate = static_cast<double>(trace.size()) / trace.back().arrival_s;
  EXPECT_NEAR(rate, cfg.offered_qps, 0.05 * cfg.offered_qps);
}

TEST(TraceStats, MmppBurstOccupancyMatchesBurstFraction) {
  // Classify fixed windows as high/low by arrival count; the time fraction
  // spent high must track burst_fraction.  The 8x rate separation makes the
  // two states unambiguous at this window size (low ~73/window, high ~582).
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  TraceConfig cfg;
  cfg.offered_qps = 20000.0;
  cfg.request_count = 400000;
  cfg.process = ArrivalProcess::kBursty;
  cfg.burst_multiplier = 8.0;
  cfg.burst_fraction = 0.25;
  cfg.mean_burst_s = 0.05;
  cfg.seed = 7;
  const std::vector<Request> trace = generate_trace(catalog, cfg);

  const double low_qps = cfg.offered_qps / (1.0 + cfg.burst_fraction * (cfg.burst_multiplier - 1.0));
  const double high_qps = cfg.burst_multiplier * low_qps;
  const double window_s = 0.01;
  const double threshold = 0.5 * (low_qps + high_qps) * window_s;
  const double duration = trace.back().arrival_s;
  const auto windows = static_cast<std::size_t>(duration / window_s);
  std::vector<std::size_t> counts(windows + 1, 0);
  for (const Request& r : trace) {
    ++counts[static_cast<std::size_t>(r.arrival_s / window_s)];
  }
  std::size_t high_windows = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    if (static_cast<double>(counts[w]) > threshold) ++high_windows;
  }
  const double occupancy = static_cast<double>(high_windows) / static_cast<double>(windows);
  EXPECT_NEAR(occupancy, cfg.burst_fraction, 0.05);
}

// ---------------------------------------------------------------------------
// Sequence-length samplers (satellite): moments, bounds, bucket grid
// ---------------------------------------------------------------------------

TEST(SeqLenSampler, FixedDrawsNothingAndReturnsZero) {
  Rng a(1, 2);
  Rng b(1, 2);
  const SeqLenConfig fixed;
  EXPECT_EQ(sample_seq_len(fixed, a), 0u);
  // No draw was consumed: the streams stay aligned.
  EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(SeqLenSampler, UniformMomentsBoundsAndGrid) {
  SeqLenConfig cfg;
  cfg.dist = SeqLenDist::kUniform;
  cfg.min_len = 64;
  cfg.max_len = 256;
  cfg.bucket = 32;
  Rng rng(42, 7);
  const std::size_t n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t len = sample_seq_len(cfg, rng);
    ASSERT_GE(len, cfg.min_len);
    ASSERT_LE(len, cfg.max_len);
    ASSERT_EQ(len % cfg.bucket, 0u);  // on the bucket grid (256 is a multiple)
    sum += len;
    sum_sq += static_cast<double>(len) * len;
  }
  const double mean = sum / static_cast<double>(n);
  const double stddev = std::sqrt(sum_sq / static_cast<double>(n) - mean * mean);
  // Round-up bucketing shifts the uniform mean from the midpoint (160) by up
  // to one bucket; the spread stays ~span/sqrt(12).
  EXPECT_GT(mean, 160.0);
  EXPECT_LT(mean, 160.0 + static_cast<double>(cfg.bucket));
  EXPECT_NEAR(stddev, (256.0 - 64.0) / std::sqrt(12.0), 6.0);
}

TEST(SeqLenSampler, LogNormalMedianBoundsAndGrid) {
  SeqLenConfig cfg;
  cfg.dist = SeqLenDist::kLogNormal;
  cfg.min_len = 16;
  cfg.max_len = 512;
  cfg.bucket = 16;
  cfg.log_mean = std::log(128.0);
  cfg.log_sigma = 0.4;
  Rng rng(11, 3);
  const std::size_t n = 50000;
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t len = sample_seq_len(cfg, rng);
    ASSERT_GE(len, cfg.min_len);
    ASSERT_LE(len, cfg.max_len);
    ASSERT_EQ(len % cfg.bucket, 0u);
    samples.push_back(len);
  }
  // The log-normal median exp(log_mean) = 128 lands in [128, 128 + bucket)
  // after round-up bucketing.
  const double median = percentile(samples, 0.5);
  EXPECT_GE(median, 128.0);
  EXPECT_LE(median, 128.0 + static_cast<double>(cfg.bucket));
  // Mean of a log-normal exceeds its median (right skew) even after clamping.
  double sum = 0.0;
  for (const double v : samples) sum += v;
  EXPECT_GT(sum / static_cast<double>(n), median);
}

TEST(SeqLenSampler, SeqStreamIsIndependentOfArrivalsAndMix) {
  // Switching an entry's distribution must not perturb arrival times or the
  // workload mix (independent rng streams).
  WorkloadCatalog fixed = WorkloadCatalog::tron_default();
  WorkloadCatalog sampled = WorkloadCatalog::tron_default();
  sampled.apply_seqlen_dist(SeqLenDist::kUniform);
  TraceConfig cfg;
  cfg.offered_qps = 5000.0;
  cfg.request_count = 4000;
  cfg.seed = 77;
  const std::vector<Request> a = generate_trace(fixed, cfg);
  const std::vector<Request> b = generate_trace(sampled, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].seq_len, 0u);
    EXPECT_NE(b[i].seq_len, 0u);
  }
}

// ---------------------------------------------------------------------------
// Seq-aware estimate cache and scheduler buckets
// ---------------------------------------------------------------------------

TEST(SeqLenCache, SeqKeyedEstimatesMatchWithSeqLenWorkloads) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const EstimateCache cache("tron", catalog);
  const tron::TronAccelerator acc(arch::tron_config_by_name("tron"));
  for (const std::uint32_t seq : {64u, 384u}) {
    nn::TransformerConfig config = catalog.workload(0).transformer_config();
    config.seq_len = seq;
    expect_reports_identical(cache.estimate(0, 4, seq), acc.estimate_batch(config, 4));
  }
  // Seq 0 is the native config, and distinct buckets are distinct keys.
  expect_reports_identical(
      cache.estimate(0, 4),
      acc.estimate_batch(catalog.workload(0).transformer_config(), 4));
  EXPECT_NE(cache.estimate(0, 4, 64).latency_s, cache.estimate(0, 4, 384).latency_s);
}

TEST(SeqLenScheduler, BatchesNeverMixSeqBuckets) {
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_s = 0.0;
  const auto sched = make_scheduler(SchedulerKind::kDynamicBatch, policy);
  // Same workload, two seq buckets, interleaved arrivals.
  sched->enqueue({0, 0.0, 7, 128}, 0.0);
  sched->enqueue({1, 0.0, 7, 256}, 0.0);
  sched->enqueue({2, 0.0, 7, 128}, 0.0);
  sched->enqueue({3, 0.0, 7, 256}, 0.0);
  const std::vector<Request> first = sched->pop(0.1);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].seq_len, first[1].seq_len);
  const std::vector<Request> second = sched->pop(0.1);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].seq_len, second[1].seq_len);
  EXPECT_NE(first[0].seq_len, second[0].seq_len);
}

TEST(SeqLenWorkload, WithSeqLenOverridesTransformersAndRejectsGnn) {
  const arch::Workload w =
      arch::Workload::transformer("bert", sim::transformer_by_name("bert-base", 128));
  const arch::Workload longer = w.with_seq_len(384);
  EXPECT_EQ(longer.transformer_config().seq_len, 384u);
  EXPECT_EQ(longer.name(), "bert");
  EXPECT_EQ(w.transformer_config().seq_len, 128u);  // original untouched
  const arch::Workload g =
      arch::Workload::gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"));
  EXPECT_THROW((void)g.with_seq_len(64), InvalidArgument);
}

TEST(SeqLenSimulation, OpenLoopWithSampledLengthsCompletesDeterministically) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_seqlen_dist(SeqLenDist::kUniform);
  Scenario scenario = base_scenario(catalog, FleetConfig::homogeneous("tron", 4));
  scenario.traffic.open.offered_qps = 10000.0;
  scenario.traffic.open.request_count = 6000;
  scenario.traffic.open.seed = 19;
  const FleetMetrics a = simulate(scenario);
  const FleetMetrics b = simulate(scenario);
  EXPECT_EQ(a.completed, 6000u);
  expect_same_fleet_metrics(a, b);
  // Distinct seq buckets inflate the key space past the fixed-length grid.
  EXPECT_GT(a.estimate_misses, 4u);
}

// ---------------------------------------------------------------------------
// Shared name tables
// ---------------------------------------------------------------------------

TEST(Names, RoundTripAndAliases) {
  EXPECT_EQ(process_from_name(process_name(ArrivalProcess::kBursty)), ArrivalProcess::kBursty);
  EXPECT_EQ(scheduler_from_name(scheduler_name(SchedulerKind::kFifo)), SchedulerKind::kFifo);
  EXPECT_EQ(routing_from_name(routing_name(RoutingPolicy::kEnergyAware)),
            RoutingPolicy::kEnergyAware);
  EXPECT_EQ(routing_from_name("energy"), RoutingPolicy::kEnergyAware);  // CLI alias
  EXPECT_EQ(autoscaler_from_name(autoscaler_name(AutoscalerPolicy::kQueueDepth)),
            AutoscalerPolicy::kQueueDepth);
  EXPECT_EQ(loop_mode_from_name(loop_mode_name(LoopMode::kClosed)), LoopMode::kClosed);
  EXPECT_EQ(seqlen_dist_from_name(seqlen_dist_name(SeqLenDist::kLogNormal)),
            SeqLenDist::kLogNormal);
}

TEST(Names, UnknownNamesThrowListingAccepted) {
  try {
    (void)scheduler_from_name("lifo");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lifo"), std::string::npos) << what;
    EXPECT_NE(what.find("fifo"), std::string::npos) << what;
    EXPECT_NE(what.find("batch"), std::string::npos) << what;
  }
  EXPECT_THROW((void)loop_mode_from_name("ajar"), InvalidArgument);
  EXPECT_THROW((void)seqlen_dist_from_name("zipf"), InvalidArgument);
}

}  // namespace
}  // namespace lumos::serve
