// Unit and property tests for the microring resonator model: resonance
// condition (paper eq. 2), FSR, Lorentzian line shape, tuning shifts, and the
// value-imprinting inverse.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "photonics/microring.hpp"

namespace lumos::phot {
namespace {

MicroringDesign default_design() { return {}; }

TEST(Microring, ResonanceSatisfiesEqTwo) {
  const MicroringResonator mr(default_design());
  // lambda_MR = 2*pi*R*n_eff / m exactly.
  const double circumference = 2.0 * std::numbers::pi * mr.design().radius_m;
  const double expected =
      circumference * mr.design().effective_index / mr.resonance_order();
  EXPECT_DOUBLE_EQ(mr.base_resonance_wavelength(), expected);
}

TEST(Microring, ResonanceNearTargetWavelength) {
  const MicroringResonator mr(default_design());
  // The chosen order puts the resonance within half an order spacing of the
  // target.  (At fixed n_eff the order spacing is lambda/m, which is larger
  // than the dispersion-corrected FSR that uses n_g.)
  const double order_spacing =
      mr.base_resonance_wavelength() / static_cast<double>(mr.resonance_order());
  EXPECT_NEAR(mr.base_resonance_wavelength(), constants::kCBandCenterWavelength,
              order_spacing / 2.0 + 1e-15);
}

TEST(Microring, ExplicitOrderIsHonoured) {
  MicroringDesign d = default_design();
  d.resonance_order = 47;
  const MicroringResonator mr(d);
  EXPECT_EQ(mr.resonance_order(), 47);
}

TEST(Microring, FsrMatchesGroupIndexFormula) {
  const MicroringResonator mr(default_design());
  const double l = 2.0 * std::numbers::pi * mr.design().radius_m;
  const double lambda = mr.base_resonance_wavelength();
  EXPECT_NEAR(mr.free_spectral_range(), lambda * lambda / (mr.design().group_index * l),
              1e-18);
}

TEST(Microring, FsrShrinksWithRadius) {
  MicroringDesign small = default_design();
  small.radius_m = 5e-6;
  MicroringDesign big = default_design();
  big.radius_m = 20e-6;
  EXPECT_GT(MicroringResonator(small).free_spectral_range(),
            MicroringResonator(big).free_spectral_range());
}

TEST(Microring, ThroughDipsToExtinctionOnResonance) {
  const MicroringResonator mr(default_design());
  const double t_on = mr.through_transmission(mr.resonance_wavelength());
  EXPECT_NEAR(t_on, mr.extinction_floor(), 1e-12);
}

TEST(Microring, ThroughRecoversOffResonance) {
  const MicroringResonator mr(default_design());
  const double far = mr.resonance_wavelength() + 50.0 * mr.fwhm();
  EXPECT_GT(mr.through_transmission(far), 0.99 * mr.max_transmission());
}

TEST(Microring, LorentzianHalfDepthAtHalfFwhm) {
  const MicroringResonator mr(default_design());
  const double t_on = mr.through_transmission(mr.resonance_wavelength());
  const double t_half = mr.through_transmission(mr.resonance_wavelength() + mr.fwhm() / 2.0);
  const double t_max = mr.max_transmission();
  // At detuning FWHM/2 the Lorentzian is at half depth.
  EXPECT_NEAR(t_half, t_max - (t_max - t_on) / 2.0, 1e-12);
}

TEST(Microring, ThroughIsSymmetricAroundResonance) {
  const MicroringResonator mr(default_design());
  for (const double k : {0.25, 0.5, 1.0, 2.0, 5.0}) {
    const double d = k * mr.fwhm();
    EXPECT_NEAR(mr.through_transmission(mr.resonance_wavelength() + d),
                mr.through_transmission(mr.resonance_wavelength() - d), 1e-12);
  }
}

TEST(Microring, DropPeaksOnResonanceAndDecays) {
  const MicroringResonator mr(default_design());
  const double on = mr.drop_transmission(mr.resonance_wavelength());
  EXPECT_NEAR(on, mr.design().drop_port_peak_transmission, 1e-12);
  EXPECT_LT(mr.drop_transmission(mr.resonance_wavelength() + 3.0 * mr.fwhm()), on / 10.0);
}

TEST(Microring, IndexShiftMovesResonanceFirstOrder) {
  MicroringResonator mr(default_design());
  const double dn = 1e-4;
  const double shift = mr.apply_index_shift(dn);
  EXPECT_NEAR(shift, mr.base_resonance_wavelength() * dn / mr.design().group_index, 1e-18);
  EXPECT_NEAR(mr.resonance_wavelength(), mr.base_resonance_wavelength() + shift, 1e-18);
}

TEST(Microring, DetuningForValueInvertsLorentzian) {
  const MicroringResonator mr(default_design());
  for (const double v : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double d = mr.detuning_for_value(v);
    const double floor = mr.extinction_floor();
    const double span = mr.max_transmission() - floor;
    const double t = mr.imprint(v);
    // v = 1.0 parks the ring far off resonance where the clamped detuning
    // leaves a ~1e-7 residual; everything else inverts to ~1e-12.
    EXPECT_NEAR((t - floor) / span, v, 1e-6) << "value " << v << " detuning " << d;
  }
}

TEST(Microring, DetuningMonotoneInValue) {
  const MicroringResonator mr(default_design());
  double prev = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.05) {
    const double d = mr.detuning_for_value(v);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Microring, TuningErrorPerturbsImprint) {
  const MicroringResonator mr(default_design());
  const double clean = mr.imprint(0.5);
  const double noisy = mr.imprint(0.5, mr.fwhm() * 0.1);
  EXPECT_NE(clean, noisy);
  // A tenth-linewidth error cannot move the value by more than ~20%.
  EXPECT_NEAR(clean, noisy, 0.2);
}

TEST(Microring, RejectsNonPhysicalDesigns) {
  MicroringDesign d = default_design();
  d.radius_m = -1.0;
  EXPECT_THROW(MicroringResonator{d}, InvalidArgument);
  d = default_design();
  d.quality_factor = 0.5;
  EXPECT_THROW(MicroringResonator{d}, InvalidArgument);
  d = default_design();
  d.extinction_ratio_db = -3.0;
  EXPECT_THROW(MicroringResonator{d}, InvalidArgument);
}

TEST(Microring, ImprintRejectsOutOfRangeValues) {
  const MicroringResonator mr(default_design());
  EXPECT_THROW((void)mr.detuning_for_value(-0.1), InvalidArgument);
  EXPECT_THROW((void)mr.detuning_for_value(1.1), InvalidArgument);
}

// Property sweep over quality factors: linewidth and extinction behave as
// designed across the realistic Q range.
class QualityFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(QualityFactorSweep, FwhmEqualsLambdaOverQ) {
  MicroringDesign d = default_design();
  d.quality_factor = GetParam();
  const MicroringResonator mr(d);
  EXPECT_NEAR(mr.fwhm(), mr.base_resonance_wavelength() / GetParam(), 1e-18);
}

TEST_P(QualityFactorSweep, ImprintInverseHoldsAtAllQ) {
  MicroringDesign d = default_design();
  d.quality_factor = GetParam();
  const MicroringResonator mr(d);
  const double floor = mr.extinction_floor();
  const double span = mr.max_transmission() - floor;
  for (const double v : {0.05, 0.35, 0.65, 0.95}) {
    EXPECT_NEAR((mr.imprint(v) - floor) / span, v, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(QRange, QualityFactorSweep,
                         ::testing::Values(2000.0, 5000.0, 8000.0, 12000.0, 20000.0));

}  // namespace
}  // namespace lumos::phot
