// Tests for the NN substrate: matrices, quantisation, functional layers, the
// transformer reference execution, and the operation trace.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/ops.hpp"
#include "nn/quantize.hpp"
#include "nn/tensor.hpp"
#include "nn/transformer.hpp"

namespace lumos::nn {
namespace {

TEST(Matrix, MatmulMatchesManual) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  v = 1.0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(Matrix, MatmulShapeMismatchRejected) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)a.matmul(b), lumos::InvalidArgument);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(1);
  Matrix m(5, 7);
  m.fill_uniform(rng, -1.0, 1.0);
  const Matrix tt = m.transposed().transposed();
  EXPECT_NEAR(tt.relative_error(m), 0.0, 1e-15);
}

TEST(Matrix, TransposeCommutesWithMatmul) {
  Rng rng(2);
  Matrix a(4, 6), b(6, 3);
  a.fill_normal(rng, 1.0);
  b.fill_normal(rng, 1.0);
  // (A B)^T == B^T A^T
  const Matrix lhs = a.matmul(b).transposed();
  const Matrix rhs = b.transposed().matmul(a.transposed());
  EXPECT_LT(lhs.relative_error(rhs), 1e-12);
}

TEST(Matrix, AddAndMaxAbs) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -5.0;
  b(0, 0) = 2.0;
  const Matrix c = a.add(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.max_abs(), 5.0);
}

TEST(Matrix, RelativeErrorZeroForIdentical) {
  Rng rng(3);
  Matrix m(3, 3);
  m.fill_uniform(rng, -2.0, 2.0);
  EXPECT_DOUBLE_EQ(m.relative_error(m), 0.0);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  Matrix m(6, 10);
  m.fill_uniform(rng, -5.0, 5.0);
  softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double s = 0.0;
    for (const double x : m.row(r)) {
      s += x;
      EXPECT_GE(x, 0.0);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Softmax, ShiftInvariant) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{101.0, 102.0, 103.0};
  softmax_inplace(a);
  softmax_inplace(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(LayerNorm, NormalisesRowStatistics) {
  Rng rng(5);
  Matrix m(4, 64);
  m.fill_uniform(rng, -3.0, 7.0);
  std::vector<double> gamma(64, 1.0), beta(64, 0.0);
  layer_norm_rows(m, gamma, beta);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (const double x : m.row(r)) mean += x;
    mean /= 64.0;
    for (const double x : m.row(r)) var += (x - mean) * (x - mean);
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  Matrix m(1, 4);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(0, 2) = 3.0;
  m(0, 3) = 4.0;
  std::vector<double> gamma(4, 2.0), beta(4, 10.0);
  layer_norm_rows(m, gamma, beta);
  double mean = 0.0;
  for (const double x : m.row(0)) mean += x;
  EXPECT_NEAR(mean / 4.0, 10.0, 1e-9);  // beta shifts the mean
}

TEST(Activations, ReluGeluSigmoidTanh) {
  Matrix m(1, 4);
  m(0, 0) = -1.0;
  m(0, 1) = 0.0;
  m(0, 2) = 1.0;
  m(0, 3) = -0.5;
  Matrix r = m;
  relu(r);
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 2), 1.0);
  Matrix s = m;
  sigmoid(s);
  EXPECT_NEAR(s(0, 1), 0.5, 1e-12);
  Matrix t = m;
  tanh_act(t);
  EXPECT_NEAR(t(0, 2), std::tanh(1.0), 1e-12);
  Matrix g = m;
  gelu(g);
  EXPECT_NEAR(g(0, 1), 0.0, 1e-12);
  EXPECT_GT(g(0, 2), 0.8);  // gelu(1) ~ 0.841
}

TEST(Attention, UniformScoresAverageValues) {
  // With Q = 0 all scores are equal, so the output is the mean of V rows.
  Matrix q(3, 4, 0.0);
  Rng rng(6);
  Matrix k(3, 4), v(3, 2);
  k.fill_normal(rng, 1.0);
  v.fill_normal(rng, 1.0);
  const Matrix out = scaled_dot_product_attention(q, k, v);
  for (std::size_t c = 0; c < 2; ++c) {
    const double mean = (v(0, c) + v(1, c) + v(2, c)) / 3.0;
    for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR(out(r, c), mean, 1e-9);
  }
}

TEST(Attention, RowsAreConvexCombinationsOfV) {
  Rng rng(7);
  Matrix q(4, 8), k(4, 8), v(4, 3);
  q.fill_normal(rng, 1.0);
  k.fill_normal(rng, 1.0);
  v.fill_uniform(rng, 0.0, 1.0);
  const Matrix out = scaled_dot_product_attention(q, k, v);
  // Each output element lies inside [min(V col), max(V col)].
  for (std::size_t c = 0; c < 3; ++c) {
    double lo = 1e300, hi = -1e300;
    for (std::size_t r = 0; r < 4; ++r) {
      lo = std::min(lo, v(r, c));
      hi = std::max(hi, v(r, c));
    }
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_GE(out(r, c), lo - 1e-9);
      EXPECT_LE(out(r, c), hi + 1e-9);
    }
  }
}

TEST(Linear, BiasApplied) {
  Matrix x(1, 2);
  x(0, 0) = 1.0;
  x(0, 1) = 2.0;
  Matrix w(2, 2);
  w(0, 0) = 1.0;
  w(1, 1) = 1.0;
  const std::vector<double> bias{10.0, 20.0};
  const Matrix y = linear(x, w, bias);
  EXPECT_DOUBLE_EQ(y(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 22.0);
}

TEST(Quantizer, RoundTripWithinHalfScale) {
  Rng rng(8);
  Matrix m(16, 16);
  m.fill_uniform(rng, -3.0, 3.0);
  const Quantizer q(8);
  const QuantizedMatrix qm = q.quantize(m);
  const Matrix back = Quantizer::dequantize(qm);
  const double bound = q.max_round_trip_error(m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(back.flat()[i] - m.flat()[i]), bound + 1e-12);
  }
}

TEST(Quantizer, CodesWithinSymmetricRange) {
  Rng rng(9);
  Matrix m(8, 8);
  m.fill_normal(rng, 10.0);
  const QuantizedMatrix qm = Quantizer(8).quantize(m);
  for (const std::int8_t c : qm.codes) {
    EXPECT_GE(c, -127);
    EXPECT_LE(c, 127);
  }
}

TEST(Quantizer, NormalizedRestoresMagnitude) {
  Rng rng(10);
  Matrix m(4, 4);
  m.fill_uniform(rng, -2.0, 2.0);
  const QuantizedMatrix qm = Quantizer(8).quantize(m);
  double scale = 0.0;
  const Matrix norm = Quantizer::normalized(qm, &scale);
  EXPECT_LE(norm.max_abs(), 1.0 + 1e-12);
  // norm * scale ~= original (within quantisation).
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(norm.flat()[i] * scale, m.flat()[i], Quantizer(8).max_round_trip_error(m) + 1e-9);
  }
}

TEST(Quantizer, ZeroMatrixSafe) {
  Matrix m(3, 3, 0.0);
  const QuantizedMatrix qm = Quantizer(8).quantize(m);
  for (const std::int8_t c : qm.codes) EXPECT_EQ(c, 0);
}

TEST(TransformerConfig, ZooDimensionsArePublished) {
  const auto zoo = llm_model_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0].name, "BERT-base");
  EXPECT_EQ(zoo[0].layers, 12u);
  EXPECT_EQ(zoo[0].d_model, 768u);
  EXPECT_EQ(zoo[1].name, "BERT-large");
  EXPECT_EQ(zoo[1].d_model, 1024u);
  EXPECT_EQ(zoo[1].heads, 16u);
  EXPECT_EQ(zoo[3].seq_len, 197u);  // ViT-Base/16
}

TEST(TransformerConfig, ParameterCountBertBase) {
  // BERT-base encoder stack: ~85M weights (embeddings excluded).
  const auto c = bert_base();
  const double params = static_cast<double>(c.parameter_count());
  EXPECT_GT(params, 80e6);
  EXPECT_LT(params, 90e6);
}

TEST(TransformerConfig, TraceMacsMatchClosedForm) {
  for (const auto& config : llm_model_zoo()) {
    std::size_t macs = 0;
    for (const OpSpec& op : layer_trace(config)) macs += op.macs();
    EXPECT_EQ(macs * config.layers, config.mac_count()) << config.name;
  }
}

TEST(TransformerConfig, OpCountTwiceMacs) {
  const auto c = bert_base();
  EXPECT_EQ(c.op_count(), 2 * c.mac_count());
}

TEST(TransformerForward, ShapePreserved) {
  const auto config = tiny_transformer(8);
  const auto weights = TransformerWeights::random(config, 42);
  Rng rng(11);
  Matrix x(8, config.d_model);
  x.fill_uniform(rng, -1.0, 1.0);
  const Matrix y = reference_forward(weights, x);
  EXPECT_EQ(y.rows(), 8u);
  EXPECT_EQ(y.cols(), config.d_model);
}

TEST(TransformerForward, OutputIsLayerNormalised) {
  const auto config = tiny_transformer(8);
  const auto weights = TransformerWeights::random(config, 42);
  Rng rng(12);
  Matrix x(8, config.d_model);
  x.fill_uniform(rng, -1.0, 1.0);
  const Matrix y = reference_forward(weights, x);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0;
    for (const double v : y.row(r)) mean += v;
    EXPECT_NEAR(mean / static_cast<double>(y.cols()), 0.0, 1e-9);
  }
}

TEST(TransformerForward, DeterministicForSeed) {
  const auto config = tiny_transformer(4);
  const auto w1 = TransformerWeights::random(config, 7);
  const auto w2 = TransformerWeights::random(config, 7);
  Rng rng(13);
  Matrix x(4, config.d_model);
  x.fill_uniform(rng, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(reference_forward(w1, x).relative_error(reference_forward(w2, x)), 0.0);
}

TEST(TransformerForward, HeadsMustDivideModel) {
  TransformerConfig bad = tiny_transformer(4);
  bad.heads = 3;  // 32 % 3 != 0
  EXPECT_THROW((void)TransformerWeights::random(bad, 1), lumos::InvalidArgument);
}

// Sequence-length sweep: MACs grow as expected (linear d^2 term + quadratic
// attention term).
class SeqLenSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SeqLenSweep, MacGrowthBetweenLinearAndQuadratic) {
  const std::size_t l = GetParam();
  const auto c1 = bert_base(l);
  const auto c2 = bert_base(2 * l);
  const double ratio = static_cast<double>(c2.mac_count()) / static_cast<double>(c1.mac_count());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Lens, SeqLenSweep,
                         ::testing::Values(std::size_t{32}, std::size_t{64}, std::size_t{128},
                                           std::size_t{256}, std::size_t{512}));

}  // namespace
}  // namespace lumos::nn
