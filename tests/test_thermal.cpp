// Tests for the thermal model: Jacobi eigensolver, dense linear solver, and
// the TED-vs-naive tuning power comparison that motivates paper Section V.A.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "photonics/thermal.hpp"

namespace lumos::phot {
namespace {

TEST(SymmetricMatrix, SetIsSymmetric) {
  SymmetricMatrix m(3);
  m.set(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(SymmetricMatrix, MultiplyMatchesManual) {
  SymmetricMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(0, 1, 1.0);
  m.set(1, 1, 3.0);
  const auto y = m.multiply({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  SymmetricMatrix m(3);
  m.set(0, 0, 3.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 2.0);
  const EigenDecomposition e = jacobi_eigendecomposition(m);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  SymmetricMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(0, 1, 1.0);
  m.set(1, 1, 2.0);
  const EigenDecomposition e = jacobi_eigendecomposition(m);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

TEST(Jacobi, ReconstructsMatrix) {
  // A = V diag(w) V^T must reproduce the original.
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  const SymmetricMatrix& a = bank.coupling();
  const EigenDecomposition e = jacobi_eigendecomposition(a);
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += e.eigenvalues[k] * e.eigenvectors[k][i] * e.eigenvectors[k][j];
      }
      EXPECT_NEAR(sum, a(i, j), 1e-6 * a(0, 0)) << i << "," << j;
    }
  }
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  const ThermalBank bank({6, 20e-6, 1.2e4, 35e-6});
  const EigenDecomposition e = jacobi_eigendecomposition(bank.coupling());
  for (std::size_t a = 0; a < e.eigenvectors.size(); ++a) {
    for (std::size_t b = a; b < e.eigenvectors.size(); ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < e.eigenvectors[a].size(); ++i) {
        dot += e.eigenvectors[a][i] * e.eigenvectors[b][i];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Jacobi, CouplingMatrixIsPositiveDefinite) {
  const ThermalBank bank({16, 20e-6, 1.2e4, 35e-6});
  for (const double w : jacobi_eigendecomposition(bank.coupling()).eigenvalues) {
    EXPECT_GT(w, 0.0);
  }
}

TEST(LinearSolver, SolvesKnownSystem) {
  SymmetricMatrix m(2);
  m.set(0, 0, 4.0);
  m.set(0, 1, 1.0);
  m.set(1, 1, 3.0);
  // 4x + y = 9, x + 3y = 10  ->  x = 17/11, y = 31/11.
  const auto x = solve_linear_system(m, {9.0, 10.0});
  EXPECT_NEAR(x[0], 17.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 31.0 / 11.0, 1e-12);
}

TEST(LinearSolver, ResidualIsTiny) {
  const ThermalBank bank({12, 20e-6, 1.2e4, 35e-6});
  std::vector<double> b(12);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + 0.3 * static_cast<double>(i % 4);
  const auto x = solve_linear_system(bank.coupling(), b);
  const auto r = bank.coupling().multiply(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(r[i], b[i], 1e-8);
}

TEST(LinearSolver, SingularMatrixThrows) {
  SymmetricMatrix m(2);
  m.set(0, 0, 1.0);
  m.set(0, 1, 1.0);
  m.set(1, 1, 1.0);  // rank 1
  EXPECT_THROW((void)solve_linear_system(m, {1.0, 2.0}), InvalidArgument);
}

TEST(ThermalBank, CouplingDecaysWithDistance) {
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  const SymmetricMatrix& c = bank.coupling();
  for (std::size_t d = 1; d < 7; ++d) {
    EXPECT_GT(c(0, d), c(0, d + 1));
  }
  EXPECT_DOUBLE_EQ(c(0, 0), 1.2e4);
}

TEST(ThermalBank, TedRealisesTargetExactlyWhenUnclipped) {
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  // A uniform positive target keeps the solve non-negative (no clipping).
  const std::vector<double> target(8, 5.0);
  bool saturated = true;
  const auto p = bank.ted_powers(target, &saturated);
  EXPECT_FALSE(saturated);
  EXPECT_LT(bank.max_temperature_error(p, target), 1e-9);
}

TEST(ThermalBank, TedUsesLessPowerThanNaive) {
  const ThermalBank bank({16, 20e-6, 1.2e4, 35e-6});
  std::vector<double> target(16);
  for (std::size_t i = 0; i < 16; ++i) target[i] = 2.0 + 3.0 * static_cast<double>(i % 5);
  const double ted = ThermalBank::total_power(bank.ted_powers(target));
  const double naive = ThermalBank::total_power(bank.naive_powers(target));
  EXPECT_LT(ted, naive);
  // The guard-band penalty is substantial for dense banks (paper's
  // motivation for adopting TED from SONIC [29]).
  EXPECT_LT(ted, 0.75 * naive);
}

TEST(ThermalBank, NaiveConvergesToItsBiasedSetpoint) {
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  std::vector<double> target(8, 4.0);
  double guard = 0.0;
  const auto p = bank.naive_powers(target, 64, &guard);
  EXPECT_GT(guard, 0.0);
  std::vector<double> biased(target);
  for (double& t : biased) t += guard;
  EXPECT_LT(bank.max_temperature_error(p, biased), 1e-3);
}

TEST(ThermalBank, PowersAreNonNegative) {
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  std::vector<double> target{10.0, 0.0, 0.0, 8.0, 0.0, 0.0, 0.0, 12.0};
  for (const double p : bank.ted_powers(target)) EXPECT_GE(p, 0.0);
  for (const double p : bank.naive_powers(target)) EXPECT_GE(p, 0.0);
}

TEST(ThermalBank, EigenmodesCachedAndSorted) {
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  const EigenDecomposition& e1 = bank.eigenmodes();
  const EigenDecomposition& e2 = bank.eigenmodes();
  EXPECT_EQ(&e1, &e2);
  for (std::size_t i = 1; i < e1.eigenvalues.size(); ++i) {
    EXPECT_LE(e1.eigenvalues[i - 1], e1.eigenvalues[i]);
  }
}

// Sweep: TED's advantage grows as rings pack closer (stronger coupling).
class PitchSweep : public ::testing::TestWithParam<double> {};

TEST_P(PitchSweep, TedSavesPowerAtEveryPitch) {
  const ThermalBank bank({12, GetParam(), 1.2e4, 35e-6});
  std::vector<double> target(12);
  for (std::size_t i = 0; i < 12; ++i) target[i] = 1.0 + static_cast<double>(i % 3);
  const double ted = ThermalBank::total_power(bank.ted_powers(target));
  const double naive = ThermalBank::total_power(bank.naive_powers(target));
  EXPECT_LT(ted, naive);
}

INSTANTIATE_TEST_SUITE_P(Pitches, PitchSweep,
                         ::testing::Values(10e-6, 15e-6, 20e-6, 30e-6, 50e-6));

}  // namespace
}  // namespace lumos::phot
