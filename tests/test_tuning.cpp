// Tests for the hybrid EO/TO tuning circuit (paper Section V.A).
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "photonics/tuning.hpp"

namespace lumos::phot {
namespace {

MicroringResonator make_ring() { return MicroringResonator(MicroringDesign{}); }

TEST(Tuning, EoRangeMatchesPlasmaDispersion) {
  const MicroringResonator ring = make_ring();
  const TuningCircuitConfig cfg;
  const TuningCircuit t(cfg, ring);
  const double dn = cfg.eo_index_shift_per_volt * cfg.eo_max_voltage;
  EXPECT_NEAR(t.eo_range_m(),
              ring.base_resonance_wavelength() * dn / ring.design().group_index, 1e-18);
}

TEST(Tuning, SmallShiftUsesEoOnly) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const TuningResult r = t.tune(t.eo_range_m() * 0.5);
  EXPECT_EQ(r.mechanism, TuningMechanism::kElectroOptic);
  EXPECT_FALSE(r.saturated);
  EXPECT_DOUBLE_EQ(r.static_power_w, 0.0);  // depletion junction
  EXPECT_GT(r.dynamic_energy_j, 0.0);
  EXPECT_NEAR(r.achieved_shift_m, t.eo_range_m() * 0.5, 1e-18);
}

TEST(Tuning, LargeShiftEngagesHybrid) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const double request = t.eo_range_m() * 10.0;
  const TuningResult r = t.tune(request);
  EXPECT_EQ(r.mechanism, TuningMechanism::kHybrid);
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.achieved_shift_m, request, 1e-15);
  EXPECT_GT(r.static_power_w, 0.0);  // heater holds the coarse component
}

TEST(Tuning, HybridLatencyDominatedByThermal) {
  const MicroringResonator ring = make_ring();
  const TuningCircuitConfig cfg;
  const TuningCircuit t(cfg, ring);
  const TuningResult r = t.tune(t.eo_range_m() * 5.0);
  EXPECT_DOUBLE_EQ(r.latency_s, cfg.to_response_time_s);
}

TEST(Tuning, EoOnlyPolicySaturates) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const TuningResult r = t.tune(t.eo_range_m() * 3.0, TuningPolicy::kEoOnly);
  EXPECT_TRUE(r.saturated);
  EXPECT_NEAR(r.achieved_shift_m, t.eo_range_m(), 1e-18);
}

TEST(Tuning, ToOnlyUsesHeaterEvenForSmallShifts) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const TuningResult r = t.tune(t.eo_range_m() * 0.1, TuningPolicy::kToOnly);
  EXPECT_EQ(r.mechanism, TuningMechanism::kThermoOptic);
  EXPECT_GT(r.static_power_w, 0.0);
}

TEST(Tuning, HybridBeatsToOnlyOnPowerForSmallShifts) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const double shift = t.eo_range_m() * 0.8;
  EXPECT_LT(t.tune(shift, TuningPolicy::kHybrid).static_power_w,
            t.tune(shift, TuningPolicy::kToOnly).static_power_w);
}

TEST(Tuning, HybridBeatsToOnlyOnLatencyForSmallShifts) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const double shift = t.eo_range_m() * 0.8;
  EXPECT_LT(t.tune(shift, TuningPolicy::kHybrid).latency_s,
            t.tune(shift, TuningPolicy::kToOnly).latency_s);
}

TEST(Tuning, TedReducesToPower) {
  const MicroringResonator ring = make_ring();
  TuningCircuitConfig with_ted;
  with_ted.use_ted = true;
  TuningCircuitConfig without;
  without.use_ted = false;
  const double shift = units::nm(2.0);
  const double p_with = TuningCircuit(with_ted, ring).tune(shift, TuningPolicy::kToOnly)
                            .static_power_w;
  const double p_without =
      TuningCircuit(without, ring).tune(shift, TuningPolicy::kToOnly).static_power_w;
  EXPECT_NEAR(p_with, p_without * (1.0 - with_ted.ted_power_saving), 1e-12);
}

TEST(Tuning, ToPowerScalesLinearlyWithShift) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const double p1 = t.tune(units::nm(1.0), TuningPolicy::kToOnly).static_power_w;
  const double p2 = t.tune(units::nm(2.0), TuningPolicy::kToOnly).static_power_w;
  EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
}

TEST(Tuning, EoEnergyIsFemtojouleScale) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const TuningResult r = t.tune(t.eo_range_m(), TuningPolicy::kEoOnly);
  EXPECT_LT(r.dynamic_energy_j, 1e-12);  // < 1 pJ
  EXPECT_GT(r.dynamic_energy_j, 1e-17);
}

TEST(Tuning, NegativeShiftRejected) {
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  EXPECT_THROW((void)t.tune(-1e-12), InvalidArgument);
}

TEST(BankTuning, TedBeatsNaiveAndTracksTargets) {
  const MicroringResonator ring = make_ring();
  const ThermalBank bank({16, 20e-6, 1.2e4, 35e-6});
  std::vector<double> shifts(16);
  for (std::size_t i = 0; i < 16; ++i) {
    shifts[i] = units::nm(0.05 + 0.01 * static_cast<double>(i % 7));
  }
  const BankTuningPower p = bank_tuning_power(bank, shifts, {}, ring);
  EXPECT_GT(p.naive_w, 0.0);
  EXPECT_LT(p.ted_w, p.naive_w);
  // The NNLS drive's residual (heaters cannot cool) must stay within the
  // temperature equivalent of the EO trim range, which the hybrid policy
  // uses for per-ring fine correction (paper Section V.A).
  const TuningCircuitConfig tcfg;
  const double eo_range_m =
      ring.base_resonance_wavelength() * tcfg.eo_index_shift_per_volt * tcfg.eo_max_voltage /
      ring.design().group_index;
  const double eo_range_k = eo_range_m * ring.design().group_index /
                            (ring.base_resonance_wavelength() * constants::kSiThermoOpticCoeff);
  EXPECT_LT(p.max_error_ted_k, eo_range_k);
  EXPECT_LT(p.max_error_naive_k, 0.5);  // converged feedback
}

TEST(BankTuning, SizeMismatchRejected) {
  const MicroringResonator ring = make_ring();
  const ThermalBank bank({8, 20e-6, 1.2e4, 35e-6});
  EXPECT_THROW((void)bank_tuning_power(bank, std::vector<double>(4, 1e-12), {}, ring),
               InvalidArgument);
}

// Policy sweep: achieved shift never exceeds the request and energy is
// non-negative across policies and magnitudes.
class PolicySweep
    : public ::testing::TestWithParam<std::tuple<TuningPolicy, double>> {};

TEST_P(PolicySweep, PhysicalInvariants) {
  const auto [policy, fraction] = GetParam();
  const MicroringResonator ring = make_ring();
  const TuningCircuit t({}, ring);
  const double request = fraction * t.to_range_m();
  const TuningResult r = t.tune(request, policy);
  EXPECT_LE(r.achieved_shift_m, request + 1e-18);
  EXPECT_GE(r.achieved_shift_m, 0.0);
  EXPECT_GE(r.dynamic_energy_j, 0.0);
  EXPECT_GE(r.static_power_w, 0.0);
  EXPECT_GT(r.latency_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Combine(::testing::Values(TuningPolicy::kEoOnly, TuningPolicy::kToOnly,
                                         TuningPolicy::kHybrid),
                       ::testing::Values(1e-4, 0.01, 0.2, 0.9, 1.5)));

}  // namespace
}  // namespace lumos::phot
