// Tests for autoregressive decode serving: the TRON per-step cost model's
// consistency with `estimate_generation`, DecodeConfig validation and
// sampling, catalog decode plumbing, the event loop's prefill+decode split
// (TTFT/TPOT accounting, token conservation under faults), the
// monolithic-vs-continuous scheduling contract, scheduler `pop_joiners`
// semantics, and parity across the sharded and campaign drivers.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "arch/accelerator.hpp"
#include "arch/registry.hpp"
#include "common/error.hpp"
#include "serve/campaign.hpp"
#include "serve/shard.hpp"
#include "serve/simulator.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {
namespace {

// Scenario over an explicit pre-materialised trace (see test_serve.cpp).
FleetMetrics simulate_trace(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                            std::vector<Request> trace, SchedulerKind scheduler,
                            const BatchPolicy& policy, const SimConfig& sim = {}) {
  Scenario scenario;
  scenario.fleet = fleet;
  scenario.catalog = catalog;
  scenario.scheduler = scheduler;
  scenario.batch = policy;
  scenario.sim = sim;
  scenario.trace = std::move(trace);
  return simulate(scenario);
}

// A decoding TRON scenario over generated open-loop traffic; the decode mode
// is the knob the mono-vs-continuous tests flip.
Scenario decode_scenario(double qps_fraction, std::size_t requests, DecodeMode mode,
                         SeqLenDist dist = SeqLenDist::kFixed, std::size_t tokens = 8) {
  Scenario scenario;
  scenario.catalog = WorkloadCatalog::tron_default();
  scenario.catalog.apply_decode(dist, tokens);
  scenario.fleet = FleetConfig::homogeneous("tron", 2);
  scenario.batch.max_batch = 8;
  scenario.sim.decode_mode = mode;
  scenario.traffic.open.offered_qps =
      qps_fraction * fleet_capacity_qps(scenario.catalog, "tron", 2, 8);
  scenario.traffic.open.request_count = requests;
  scenario.traffic.open.seed = 29;
  return scenario;
}

// ---------------------------------------------------------------------------
// TRON decode-step cost model
// ---------------------------------------------------------------------------

// The header pins it: at batch 1, `estimate_decode_step` is exactly one
// iteration of `estimate_generation`'s loop, so stepping the contexts
// reproduces the whole generation bit for bit.
TEST(TronDecode, BatchOneStepsSumToGenerationEstimate) {
  const auto accel = arch::make_accelerator("tron");
  ASSERT_TRUE(accel->can_generate());
  const auto* adapter = dynamic_cast<const arch::TronAdapter*>(accel.get());
  ASSERT_NE(adapter, nullptr);

  const nn::TransformerConfig model = sim::transformer_by_name("bert-base", 128);
  constexpr std::size_t kPrompt = 128;
  constexpr std::size_t kTokens = 6;
  const PerfReport generation =
      adapter->device().estimate_generation(model, kPrompt, kTokens);

  double latency = 0.0;
  double dynamic_energy = 0.0;
  for (std::size_t t = 0; t < kTokens; ++t) {
    const PerfReport step = adapter->device().estimate_decode_step(model, 1, kPrompt + t);
    latency += step.latency_s;
    dynamic_energy += step.dynamic_energy_j;
  }
  EXPECT_DOUBLE_EQ(latency, generation.latency_s);
  EXPECT_DOUBLE_EQ(dynamic_energy, generation.dynamic_energy_j);
}

// Decode is memory-bound: the per-step weight re-stream is paid once no
// matter how many lanes share the step, so a batched step costs far less
// than one step per lane — the amortisation continuous batching exists
// to exploit.
TEST(TronDecode, BatchedStepAmortisesTheWeightStream) {
  const auto accel = arch::make_accelerator("tron");
  const arch::Workload workload =
      arch::Workload::transformer("bert-base", sim::transformer_by_name("bert-base", 128));
  const double one = accel->estimate_decode_step(workload, 1, 128).latency_s;
  const double eight = accel->estimate_decode_step(workload, 8, 128).latency_s;
  EXPECT_GE(eight, one);
  EXPECT_LT(eight, 8.0 * one);
}

TEST(TronDecode, GhostHasNoDecodePath) {
  const auto ghost = arch::make_accelerator("ghost");
  EXPECT_FALSE(ghost->can_generate());
  const gnn::GnnModelConfig gcn = sim::gnn_by_name("gcn");
  const arch::Workload workload = arch::Workload::gnn("gcn", gcn, sim::dataset_by_name("cora"));
  EXPECT_THROW((void)ghost->estimate_decode_step(workload, 1, 128), InvalidArgument);
}

// ---------------------------------------------------------------------------
// DecodeConfig validation and sampling
// ---------------------------------------------------------------------------

TEST(DecodeValidation, DisabledConfigIsAlwaysValid) {
  DecodeConfig off;
  off.ctx_bucket = 0;  // only checked when decode is enabled
  EXPECT_NO_THROW(validate_decode(off, "bert-base"));
}

TEST(DecodeValidation, NamesBadFields) {
  DecodeConfig cfg;
  cfg.dist = SeqLenDist::kUniform;
  cfg.min_tokens = 32;
  cfg.max_tokens = 8;  // inverted bounds
  EXPECT_THROW(validate_decode(cfg, "bert-base"), InvalidArgument);

  cfg = DecodeConfig{};
  cfg.tokens = 8;
  cfg.ctx_bucket = 0;
  EXPECT_THROW(validate_decode(cfg, "bert-base"), InvalidArgument);

  cfg = DecodeConfig{};
  cfg.dist = SeqLenDist::kLogNormal;
  cfg.log_sigma = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate_decode(cfg, "bert-base"), InvalidArgument);

  cfg = DecodeConfig{};
  cfg.tokens = 8;
  cfg.ttft_slo_s = -1e-3;
  EXPECT_THROW(validate_decode(cfg, "bert-base"), InvalidArgument);
  cfg.ttft_slo_s = 0.0;
  cfg.tpot_slo_s = -1e-6;
  EXPECT_THROW(validate_decode(cfg, "bert-base"), InvalidArgument);
}

// A disabled config consumes no draw, so decode-free entries never perturb
// the rng stream they share with decoding entries (the same contract
// sequence-length sampling keeps).
TEST(DecodeSampling, DisabledConsumesNoDraw) {
  DecodeConfig off;
  DecodeConfig uniform;
  uniform.dist = SeqLenDist::kUniform;
  uniform.min_tokens = 4;
  uniform.max_tokens = 64;

  Rng with_disabled(7);
  EXPECT_EQ(sample_decode_tokens(off, with_disabled), 0u);
  Rng fresh(7);
  EXPECT_EQ(sample_decode_tokens(uniform, with_disabled),
            sample_decode_tokens(uniform, fresh));
}

TEST(DecodeSampling, FixedAndBoundedDraws) {
  DecodeConfig fixed;
  fixed.tokens = 24;
  Rng rng(11);
  EXPECT_EQ(sample_decode_tokens(fixed, rng), 24u);

  DecodeConfig uniform;
  uniform.dist = SeqLenDist::kUniform;
  uniform.min_tokens = 4;
  uniform.max_tokens = 64;
  DecodeConfig lognormal;
  lognormal.dist = SeqLenDist::kLogNormal;
  lognormal.min_tokens = 1;
  lognormal.max_tokens = 256;
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t u = sample_decode_tokens(uniform, rng);
    EXPECT_GE(u, 4u);
    EXPECT_LE(u, 64u);
    const std::uint32_t l = sample_decode_tokens(lognormal, rng);
    EXPECT_GE(l, 1u);
    EXPECT_LE(l, 256u);
  }
}

// ---------------------------------------------------------------------------
// Catalog decode plumbing
// ---------------------------------------------------------------------------

TEST(CatalogDecode, ApplyDecodeTargetsEveryTransformerEntry) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  EXPECT_FALSE(catalog.has_decode());
  catalog.apply_decode(SeqLenDist::kFixed, 16);
  EXPECT_TRUE(catalog.has_decode());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_TRUE(catalog.at(i).decode.enabled());
    EXPECT_EQ(catalog.at(i).decode.tokens, 16u);
  }
}

TEST(CatalogDecode, MixedCatalogLeavesGnnEntriesDisabled) {
  WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  catalog.apply_decode(SeqLenDist::kLogNormal, 32);
  EXPECT_TRUE(catalog.has_decode());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.workload(i).kind() == arch::WorkloadKind::kGnn) {
      EXPECT_FALSE(catalog.at(i).decode.enabled());
    } else {
      EXPECT_TRUE(catalog.at(i).decode.enabled());
    }
  }
}

TEST(CatalogDecode, GnnEntriesRejectDecode) {
  WorkloadCatalog ghost = WorkloadCatalog::ghost_default();
  DecodeConfig cfg;
  cfg.tokens = 8;
  EXPECT_THROW(ghost.set_decode(0, cfg), InvalidArgument);
  // No transformer entry to decode on at all.
  EXPECT_THROW(ghost.apply_decode(SeqLenDist::kFixed, 8), InvalidArgument);
}

TEST(CatalogDecode, TokenSlosApplyToDecodingEntriesOnly) {
  WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  catalog.apply_decode(SeqLenDist::kFixed, 8);
  catalog.apply_token_slos(500e-6, 100e-6);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.at(i).decode.enabled()) {
      EXPECT_DOUBLE_EQ(catalog.at(i).decode.ttft_slo_s, 500e-6);
      EXPECT_DOUBLE_EQ(catalog.at(i).decode.tpot_slo_s, 100e-6);
    } else {
      EXPECT_DOUBLE_EQ(catalog.at(i).decode.ttft_slo_s, 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Event loop: decode-free bit-identity, TTFT/TPOT accounting
// ---------------------------------------------------------------------------

// The decode mode knob must be inert on a decode-free catalog: both modes
// take the historical event loop path bit for bit.
TEST(DecodeLoop, DecodeFreeRunIsBitIdenticalAcrossModes) {
  Scenario scenario;
  scenario.catalog = WorkloadCatalog::tron_default();
  scenario.fleet = FleetConfig::homogeneous("tron", 2);
  scenario.traffic.open.offered_qps =
      0.8 * fleet_capacity_qps(scenario.catalog, "tron", 2, 8);
  scenario.traffic.open.request_count = 3000;
  scenario.traffic.open.seed = 5;

  scenario.sim.decode_mode = DecodeMode::kMonolithic;
  const FleetMetrics mono = simulate(scenario);
  scenario.sim.decode_mode = DecodeMode::kContinuous;
  const FleetMetrics cont = simulate(scenario);

  EXPECT_EQ(mono.completed, cont.completed);
  EXPECT_EQ(mono.dispatches, cont.dispatches);
  EXPECT_EQ(mono.p99_latency_s, cont.p99_latency_s);
  EXPECT_EQ(mono.mean_latency_s, cont.mean_latency_s);
  EXPECT_EQ(mono.fleet_energy_j, cont.fleet_energy_j);
  EXPECT_EQ(mono.goodput_qps, cont.goodput_qps);
  EXPECT_EQ(mono.decode_requests, 0u);
  EXPECT_EQ(mono.generated_tokens, 0u);
  EXPECT_EQ(mono.decode_steps, 0u);
  EXPECT_EQ(mono.mean_ttft_s, 0.0);
}

// One request, fixed decode length: TTFT is exactly the unloaded prefill
// latency (arrival at t=0, idle fleet) and the end-to-end latency decomposes
// into TTFT plus (tokens - 1) decode steps scored as TPOT.
TEST(DecodeLoop, SingleRequestTtftIsPrefillAndLatencyDecomposes) {
  constexpr std::uint32_t kTokens = 8;
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_decode(SeqLenDist::kFixed, kTokens);

  std::vector<Request> trace(1);
  trace[0].id = 1;
  trace[0].arrival_s = 0.0;
  trace[0].workload = 0;
  trace[0].decode_tokens = kTokens;

  const FleetMetrics m =
      simulate_trace(FleetConfig::homogeneous("tron", 1), catalog, trace,
                     SchedulerKind::kFifo, BatchPolicy{});

  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.decode_requests, 1u);
  EXPECT_EQ(m.generated_tokens, kTokens);
  EXPECT_EQ(m.decode_steps, kTokens - 1u);

  const auto accel = arch::make_accelerator("tron");
  const double prefill_s = accel->estimate_batch(catalog.workload(0), 1).latency_s;
  EXPECT_DOUBLE_EQ(m.mean_ttft_s, prefill_s);
  EXPECT_DOUBLE_EQ(m.max_ttft_s, m.mean_ttft_s);
  // latency = ttft + tpot * (tokens - 1), up to the division round-trip.
  EXPECT_NEAR(m.mean_latency_s,
              m.mean_ttft_s + m.mean_tpot_s * static_cast<double>(kTokens - 1),
              1e-12 * m.mean_latency_s);
  EXPECT_GT(m.mean_tpot_s, 0.0);
  // A single lane decoding alone: every step ran at occupancy 1.
  EXPECT_DOUBLE_EQ(m.mean_decode_occupancy, 1.0);
  ASSERT_GT(m.decode_occupancy.size(), 1u);
  EXPECT_EQ(m.decode_occupancy[1], static_cast<std::size_t>(kTokens - 1u));
  // No per-token SLO configured: attainment reports 1 by convention.
  EXPECT_DOUBLE_EQ(m.ttft_attainment, 1.0);
  EXPECT_DOUBLE_EQ(m.tpot_attainment, 1.0);
}

// The tentpole contract: under load, admitting waiting prefills into free
// decode lanes must cut TTFT relative to monolithic batches — while serving
// exactly the same work (token conservation across modes).
TEST(DecodeLoop, ContinuousBatchingImprovesTtftUnderLoad) {
  const FleetMetrics mono =
      simulate(decode_scenario(1.2, 4000, DecodeMode::kMonolithic, SeqLenDist::kLogNormal, 32));
  const FleetMetrics cont =
      simulate(decode_scenario(1.2, 4000, DecodeMode::kContinuous, SeqLenDist::kLogNormal, 32));

  ASSERT_GT(mono.decode_requests, 0u);
  EXPECT_EQ(mono.completed, cont.completed);
  EXPECT_EQ(mono.generated_tokens, cont.generated_tokens);
  EXPECT_LT(cont.mean_ttft_s, mono.mean_ttft_s);
  EXPECT_LT(cont.p95_ttft_s, mono.p95_ttft_s);
  // Refilled lanes run fuller batches than draining monolithic ones.
  EXPECT_GE(cont.mean_decode_occupancy, mono.mean_decode_occupancy);
}

// Mid-decode slot failures abort the batch and requeue its requests from
// scratch; with retries-from-zero the fixed decode length makes conservation
// exact: every completion generated all its tokens, and the aborted partial
// progress is accounted separately.
TEST(DecodeLoop, FaultAbortsConserveTokenAccounting) {
  constexpr std::uint32_t kTokens = 6;
  Scenario scenario = decode_scenario(0.7, 3000, DecodeMode::kContinuous,
                                      SeqLenDist::kFixed, kTokens);
  scenario.sim.faults.mtbf_s = 20e-3;
  scenario.sim.faults.mttr_s = 2e-3;
  scenario.sim.faults.seed = 3;

  const FleetMetrics m = simulate(scenario);
  EXPECT_GT(m.slot_failures, 0u);
  EXPECT_GT(m.requeued_requests, 0u);
  EXPECT_EQ(m.completed, 3000u);  // no timeouts/admission: every request completes
  EXPECT_EQ(m.generated_tokens, m.completed * kTokens);
  EXPECT_GT(m.aborted_decode_tokens, 0u);
}

// ---------------------------------------------------------------------------
// Scheduler pop_joiners
// ---------------------------------------------------------------------------

Request make_request(std::uint64_t id, double arrival_s, std::uint32_t workload,
                     std::uint32_t seq_len = 0) {
  Request r;
  r.id = id;
  r.arrival_s = arrival_s;
  r.first_arrival_s = arrival_s;
  r.workload = workload;
  r.seq_len = seq_len;
  return r;
}

TEST(PopJoiners, FifoAppendsMatchingWorkloadInArrivalOrder) {
  BatchPolicy policy;
  const auto scheduler = make_scheduler(SchedulerKind::kFifo, policy);
  scheduler->enqueue(make_request(1, 0.0, 0), 0.0);
  scheduler->enqueue(make_request(2, 1e-3, 1), 1e-3);  // other workload: not a joiner
  scheduler->enqueue(make_request(3, 2e-3, 0), 2e-3);
  scheduler->enqueue(make_request(4, 3e-3, 0), 3e-3);

  std::vector<Request> out;
  out.push_back(make_request(99, 0.0, 0));  // must survive: joiners append
  const std::size_t joined = scheduler->pop_joiners(0, 2, 4e-3, out);
  EXPECT_EQ(joined, 2u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 99u);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_EQ(out[2].id, 3u);
  EXPECT_EQ(scheduler->queued(), 2u);  // request 4 and the workload-1 request

  out.clear();
  EXPECT_EQ(scheduler->pop_joiners(0, 4, 5e-3, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 4u);
  EXPECT_EQ(scheduler->pop_joiners(0, 4, 6e-3, out), 0u);
}

TEST(PopJoiners, DynamicBatchJoinsOldestHeadAcrossSeqBuckets) {
  BatchPolicy policy;
  policy.max_batch = 8;
  const auto scheduler = make_scheduler(SchedulerKind::kDynamicBatch, policy);
  // Two seq buckets of workload 0; the joiner order follows arrival across
  // buckets, not bucket order.
  scheduler->enqueue(make_request(1, 0.0, 0, 256), 0.0);
  scheduler->enqueue(make_request(2, 1e-3, 0, 128), 1e-3);
  scheduler->enqueue(make_request(3, 2e-3, 0, 256), 2e-3);

  std::vector<Request> out;
  EXPECT_EQ(scheduler->pop_joiners(0, 3, 3e-3, out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(out[2].id, 3u);
  EXPECT_EQ(scheduler->queued(), 0u);
}

TEST(PopJoiners, BaseImplementationJoinsNothing) {
  // A scheduler without a phase-aware pop keeps monolithic semantics via the
  // base no-op.
  class Minimal final : public Scheduler {
   public:
    void enqueue(const Request&, double) override {}
    [[nodiscard]] std::size_t queued() const noexcept override { return 0; }
    [[nodiscard]] bool ready(double, const WorkloadMask&) const noexcept override {
      return false;
    }
    [[nodiscard]] double next_deadline_s(const WorkloadMask&) const noexcept override {
      return std::numeric_limits<double>::infinity();
    }
    void pop(double, const WorkloadMask&, std::vector<Request>& out) override { out.clear(); }
  };
  Minimal minimal;
  std::vector<Request> out;
  out.push_back(make_request(99, 0.0, 0));
  EXPECT_EQ(minimal.pop_joiners(0, 8, 0.0, out), 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 99u);
}

// ---------------------------------------------------------------------------
// Driver parity: sharding and campaigns
// ---------------------------------------------------------------------------

TEST(DecodeParity, CellsOneShardingMatchesSerialSimulation) {
  const Scenario scenario =
      decode_scenario(0.8, 4000, DecodeMode::kContinuous, SeqLenDist::kLogNormal, 16);
  const FleetMetrics serial = simulate(scenario);
  const FleetMetrics sharded = simulate_sharded(scenario, 1);
  EXPECT_EQ(serial.completed, sharded.completed);
  EXPECT_EQ(serial.p99_latency_s, sharded.p99_latency_s);
  EXPECT_EQ(serial.generated_tokens, sharded.generated_tokens);
  EXPECT_EQ(serial.decode_steps, sharded.decode_steps);
  EXPECT_EQ(serial.mean_ttft_s, sharded.mean_ttft_s);
  EXPECT_EQ(serial.p95_ttft_s, sharded.p95_ttft_s);
  EXPECT_EQ(serial.p95_tpot_s, sharded.p95_tpot_s);
  EXPECT_EQ(serial.mean_decode_occupancy, sharded.mean_decode_occupancy);
  EXPECT_EQ(serial.fleet_energy_j, sharded.fleet_energy_j);
}

TEST(DecodeParity, CampaignPointMatchesDirectSimulation) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_decode(SeqLenDist::kLogNormal, 16);

  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.7 * fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.requests_per_point = 3000;
  cfg.seed = 17;
  cfg.decode_mode = DecodeMode::kContinuous;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].metrics.decode_requests, 0u);

  TraceConfig trace_cfg;
  trace_cfg.offered_qps = cfg.qps[0];
  trace_cfg.request_count = cfg.requests_per_point;
  trace_cfg.seed = cfg.seed + 0x9E3779B9u * 1;
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_s = cfg.max_wait_s;
  SimConfig sim_cfg;
  sim_cfg.slo_scale = cfg.slo_scale;
  sim_cfg.decode_mode = DecodeMode::kContinuous;
  const FleetMetrics serial =
      simulate_trace(FleetConfig::homogeneous("tron", 2), catalog,
                     generate_trace(catalog, trace_cfg), SchedulerKind::kDynamicBatch,
                     policy, sim_cfg);
  EXPECT_EQ(points[0].metrics.p99_latency_s, serial.p99_latency_s);
  EXPECT_EQ(points[0].metrics.generated_tokens, serial.generated_tokens);
  EXPECT_EQ(points[0].metrics.tokens_per_s, serial.tokens_per_s);
  EXPECT_EQ(points[0].metrics.p95_ttft_s, serial.p95_ttft_s);
  EXPECT_EQ(points[0].metrics.p95_tpot_s, serial.p95_tpot_s);
}

}  // namespace
}  // namespace lumos::serve
