// Tests for the performance kernel layer added with the parallel compute PR:
// the thread pool / parallel_for, the blocked matmul family (parity with a
// naive reference), the degree-histogram GHOST estimator (bit-identical to
// the per-node reference), and the fast partitioner (identical schedules).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "ghost/accelerator.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "perf_report_matchers.hpp"

namespace lumos {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / parallel_for
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run_chunks(hits.size(), [&](std::size_t c) { ++hits[c]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialPoolStillRuns) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.run_chunks(100, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run_chunks(64,
                               [&](std::size_t c) {
                                 if (c == 13) throw InvalidArgument("boom");
                               }),
               InvalidArgument);
}

TEST(ParallelFor, CoversRangeWithoutOverlap) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunkBoundariesAreGrainMultiples) {
  // Deterministic partitioning contract: chunk starts depend only on the
  // range and the grain.
  std::vector<std::pair<std::size_t, std::size_t>> chunks(20, {0, 0});
  std::atomic<std::size_t> idx{0};
  parallel_for(0, 100, 32, [&](std::size_t lo, std::size_t hi) {
    chunks[idx.fetch_add(1)] = {lo, hi};
  });
  EXPECT_EQ(idx.load(), 4u);  // ceil(100 / 32)
  for (std::size_t i = 0; i < idx.load(); ++i) {
    EXPECT_EQ(chunks[i].first % 32, 0u);
    EXPECT_EQ(chunks[i].second, std::min<std::size_t>(chunks[i].first + 32, 100));
  }
}

TEST(ParallelFor, EmptyRangeIsNoOp) {
  bool ran = false;
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NestedCallsRunInline) {
  std::atomic<int> total{0};
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    parallel_for(0, 8, 1, [&](std::size_t, std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

// ---------------------------------------------------------------------------
// Matmul kernel parity
// ---------------------------------------------------------------------------

nn::Matrix naive_matmul(const nn::Matrix& a, const nn::Matrix& b) {
  nn::Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = s;
    }
  return out;
}

TEST(BlockedMatmul, MatchesNaiveReferenceAcrossShapes) {
  Rng rng(11);
  // Shapes chosen to exercise every tail path of the register tiling (row
  // tails, column tails, k tails, and the sub-tile small cases).
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 2},    {7, 13, 9},
                                   {33, 65, 31}, {64, 64, 64}, {100, 257, 50},
                                   {128, 300, 96}};
  for (const auto& s : shapes) {
    nn::Matrix a(s[0], s[1]), b(s[1], s[2]);
    a.fill_uniform(rng, -1.0, 1.0);
    b.fill_uniform(rng, -1.0, 1.0);
    const nn::Matrix got = a.matmul(b);
    const nn::Matrix want = naive_matmul(a, b);
    EXPECT_LT(got.relative_error(want), 1e-12)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(BlockedMatmul, MatmulNtMatchesTransposedMatmul) {
  Rng rng(12);
  const std::size_t shapes[][3] = {{5, 9, 3}, {31, 64, 33}, {96, 40, 127}};
  for (const auto& s : shapes) {
    nn::Matrix a(s[0], s[1]), bt(s[2], s[1]);  // b^T stored row-major
    a.fill_uniform(rng, -1.0, 1.0);
    bt.fill_uniform(rng, -1.0, 1.0);
    const nn::Matrix got = a.matmul_nt(bt);
    const nn::Matrix want = naive_matmul(a, bt.transposed());
    EXPECT_LT(got.relative_error(want), 1e-12);
  }
}

TEST(BlockedMatmul, MatmulIntoReusesBufferAcrossShapes) {
  Rng rng(13);
  nn::Matrix out;
  for (const std::size_t n : {60UL, 17UL, 33UL}) {
    nn::Matrix a(n, n + 3), b(n + 3, n + 1);
    a.fill_uniform(rng, -1.0, 1.0);
    b.fill_uniform(rng, -1.0, 1.0);
    a.matmul_into(b, out);
    EXPECT_EQ(out.rows(), n);
    EXPECT_EQ(out.cols(), n + 1);
    EXPECT_LT(out.relative_error(naive_matmul(a, b)), 1e-12);
  }
}

TEST(BlockedMatmul, IntoRejectsAliasedOutput) {
  nn::Matrix a(4, 4, 1.0);
  EXPECT_THROW(a.matmul_into(a, a), InvalidArgument);
}

TEST(BlockedMatmul, DeterministicAcrossRepeats) {
  Rng rng(14);
  nn::Matrix a(77, 130), b(130, 61);
  a.fill_uniform(rng, -1.0, 1.0);
  b.fill_uniform(rng, -1.0, 1.0);
  const nn::Matrix first = a.matmul(b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.matmul(b).relative_error(first), 0.0);
  }
}

TEST(Matrix, RelativeErrorZeroReferenceIsInfinity) {
  nn::Matrix zero(2, 2);
  nn::Matrix nonzero(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(zero.relative_error(zero), 0.0);
  EXPECT_EQ(nonzero.relative_error(zero), std::numeric_limits<double>::infinity());
}

TEST(Attention, TransposeFreePathMatchesExplicitTranspose) {
  Rng rng(15);
  nn::Matrix q(37, 16), k(37, 16), v(37, 24);
  q.fill_uniform(rng, -1.0, 1.0);
  k.fill_uniform(rng, -1.0, 1.0);
  v.fill_uniform(rng, -1.0, 1.0);
  const nn::Matrix got = nn::scaled_dot_product_attention(q, k, v);
  // Reference: materialised K^T through the naive kernel.
  nn::Matrix scores = naive_matmul(q, k.transposed());
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(q.cols()));
  for (double& s : scores.flat()) s *= inv_sqrt_dk;
  nn::softmax_rows(scores);
  const nn::Matrix want = naive_matmul(scores, v);
  EXPECT_LT(got.relative_error(want), 1e-12);
}

// ---------------------------------------------------------------------------
// Degree histogram + GHOST estimator parity
// ---------------------------------------------------------------------------

void expect_histogram_matches(const graph::CsrGraph& g) {
  const auto hist = g.degree_histogram();
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t prev_degree = 0;
  bool first = true;
  for (const graph::DegreeBucket& bucket : hist) {
    EXPECT_GT(bucket.count, 0u);
    if (!first) {
      EXPECT_GT(bucket.degree, prev_degree);  // ascending, distinct
    }
    first = false;
    prev_degree = bucket.degree;
    vertices += bucket.count;
    edges += bucket.degree * bucket.count;
  }
  EXPECT_EQ(vertices, g.node_count());
  EXPECT_EQ(edges, g.edge_count());
  // Cross-check per-vertex counts.
  for (const graph::DegreeBucket& bucket : hist) {
    std::size_t count = 0;
    for (std::size_t v = 0; v < g.node_count(); ++v) {
      if (g.degree(static_cast<graph::NodeId>(v)) == bucket.degree) ++count;
    }
    EXPECT_EQ(count, bucket.count);
  }
}

TEST(DegreeHistogram, MatchesPerNodeDegrees) {
  expect_histogram_matches(graph::rmat(10, 8, {}, 3));
  expect_histogram_matches(graph::synthetic_cora().graph);
  expect_histogram_matches(graph::erdos_renyi(500, 2000, 4));
}

void expect_estimates_identical(const ghost::GhostAccelerator& acc,
                                const gnn::GnnModelConfig& model,
                                const graph::GraphDataset& ds) {
  const PerfReport a = acc.estimate(model, ds, ghost::AggregateCosting::kDegreeHistogram);
  const PerfReport b = acc.estimate(model, ds, ghost::AggregateCosting::kPerNodeReference);
  // Bit-identical, not just close: the histogram reorders only integer
  // arithmetic.
  lumos::testing::expect_reports_identical(a, b);
}

TEST(GhostEstimator, HistogramBitIdenticalToPerNodeLoop) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  graph::GraphDataset rmat_ds;
  rmat_ds.name = "rmat-12";
  rmat_ds.graph = graph::rmat(12, 8, {}, 5);
  rmat_ds.feature_dim = 64;
  rmat_ds.class_count = 16;
  for (const auto& model : gnn::gnn_model_zoo()) {
    expect_estimates_identical(acc, model, rmat_ds);
    expect_estimates_identical(acc, model, graph::synthetic_cora());
  }
}

TEST(GhostEstimator, ParityHoldsWithOptimisationsToggledOff) {
  ghost::GhostConfig cfg = ghost::default_ghost_config();
  cfg.buffer_and_partition = false;
  cfg.workload_balancing = false;
  const ghost::GhostAccelerator acc(cfg);
  graph::GraphDataset ds;
  ds.name = "rmat-11";
  ds.graph = graph::rmat(11, 6, {}, 9);
  ds.feature_dim = 32;
  ds.class_count = 8;
  expect_estimates_identical(acc, gnn::gcn_model(), ds);
}

// ---------------------------------------------------------------------------
// Fast partitioner parity
// ---------------------------------------------------------------------------

TEST(Partition, FastTilingIdenticalToReference) {
  const graph::CsrGraph g = graph::rmat(12, 8, {}, 17);
  for (const graph::PartitionConfig cfg :
       {graph::PartitionConfig{16, 2048}, graph::PartitionConfig{8, 512},
        graph::PartitionConfig{3, 100} /* non-power-of-two divide path */}) {
    const graph::PartitionSchedule fast = graph::partition(g, cfg);
    const graph::PartitionSchedule ref = graph::partition_reference(g, cfg);
    ASSERT_EQ(fast.tiles.size(), ref.tiles.size());
    EXPECT_EQ(fast.output_block_count, ref.output_block_count);
    EXPECT_EQ(fast.input_block_count, ref.input_block_count);
    for (std::size_t i = 0; i < fast.tiles.size(); ++i) {
      EXPECT_EQ(fast.tiles[i].output_block, ref.tiles[i].output_block);
      EXPECT_EQ(fast.tiles[i].input_block, ref.tiles[i].input_block);
      EXPECT_EQ(fast.tiles[i].edge_count, ref.tiles[i].edge_count);
    }
  }
}

}  // namespace
}  // namespace lumos
