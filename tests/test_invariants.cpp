// Cross-module invariants: conservation laws and consistency properties that
// must hold across the whole library regardless of configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "photonics/wdm.hpp"
#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace lumos {
namespace {

TEST(Invariants, EveryFigureReportIsInternallyConsistent) {
  const auto check = [](const sim::FigureData& f) {
    for (const auto& row : f.reports) {
      for (const PerfReport& r : row) {
        EXPECT_GT(r.latency_s, 0.0) << r.platform << " " << r.workload;
        EXPECT_GE(r.dynamic_energy_j, 0.0);
        EXPECT_GE(r.static_energy_j, 0.0);
        EXPECT_NEAR(r.total_energy_j, r.dynamic_energy_j + r.static_energy_j,
                    1e-9 * r.total_energy_j + 1e-15);
        EXPECT_NEAR(r.static_energy_j, r.static_power_w * r.latency_s,
                    1e-9 * r.static_energy_j + 1e-15);
        EXPECT_GT(r.op_count, 0u);
      }
    }
  };
  check(sim::run_fig8_epb_llm(arch::TronAdapter(tron::default_tron_config())));
  check(sim::run_fig10_epb_gnn(arch::GhostAdapter(ghost::default_ghost_config())));
}

TEST(Invariants, EpbAndGopsFiguresShareReports) {
  // The EPB and GOPS figures must be two views of the same simulations.
  const auto e = sim::run_fig8_epb_llm(arch::TronAdapter(tron::default_tron_config()));
  const auto g = sim::run_fig9_gops_llm(arch::TronAdapter(tron::default_tron_config()));
  ASSERT_EQ(e.workloads.size(), g.workloads.size());
  for (std::size_t w = 0; w < e.workloads.size(); ++w) {
    for (std::size_t p = 0; p < e.platforms.size(); ++p) {
      EXPECT_DOUBLE_EQ(e.reports[w][p].latency_s, g.reports[w][p].latency_s);
      EXPECT_DOUBLE_EQ(e.reports[w][p].total_energy_j, g.reports[w][p].total_energy_j);
    }
  }
}

TEST(Invariants, TronDynamicEnergyEqualsBreakdownSum) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  for (const auto& model : nn::llm_model_zoo()) {
    const PerfReport r = acc.estimate(model);
    const PerfBreakdown& b = r.breakdown;
    const double sum = b.laser_dac_adc_energy_j + b.partial_sum_energy_j +
                       b.softmax_energy_j + b.elementwise_energy_j + b.sram_energy_j +
                       b.dram_energy_j + b.aggregation_energy_j;
    EXPECT_NEAR(sum, r.dynamic_energy_j, 1e-12) << model.name;
  }
}

TEST(Invariants, GhostDynamicEnergyEqualsBreakdownSum) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const auto ds = graph::synthetic_cora();
  for (const auto& model : gnn::gnn_model_zoo()) {
    const PerfReport r = acc.estimate(model, ds);
    const PerfBreakdown& b = r.breakdown;
    const double sum = b.laser_dac_adc_energy_j + b.partial_sum_energy_j +
                       b.softmax_energy_j + b.elementwise_energy_j + b.sram_energy_j +
                       b.dram_energy_j + b.aggregation_energy_j;
    EXPECT_NEAR(sum, r.dynamic_energy_j, 1e-12) << model.name;
  }
}

TEST(Invariants, FasterSymbolRateNeverSlower) {
  tron::TronConfig slow = tron::default_tron_config();
  slow.symbol_rate_hz = 5e9;
  slow.bank.symbol_rate_hz = 5e9;
  tron::TronConfig fast = tron::default_tron_config();
  fast.symbol_rate_hz = 20e9;
  fast.bank.symbol_rate_hz = 20e9;
  for (const auto& model : nn::llm_model_zoo()) {
    EXPECT_LE(tron::TronAccelerator(fast).estimate(model).latency_s,
              tron::TronAccelerator(slow).estimate(model).latency_s + 1e-12)
        << model.name;
  }
}

TEST(Invariants, MoreDramBandwidthNeverSlowerForGhost) {
  ghost::GhostConfig narrow = ghost::default_ghost_config();
  narrow.dram.bandwidth_bytes_per_s = 128e9;
  ghost::GhostConfig wide = ghost::default_ghost_config();
  wide.dram.bandwidth_bytes_per_s = 1024e9;
  const auto ds = graph::synthetic_citeseer();
  for (const auto& model : gnn::gnn_model_zoo()) {
    EXPECT_LE(ghost::GhostAccelerator(wide).estimate(model, ds).latency_s,
              ghost::GhostAccelerator(narrow).estimate(model, ds).latency_s + 1e-12)
        << model.name;
  }
}

TEST(Invariants, PhotonicDotDeterministicPerSeed) {
  const tron::TronConfig cfg = tron::default_tron_config();
  const phot::MrBank bank(cfg.bank);
  std::vector<double> a(16), w(16);
  Rng data(1);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = data.uniform(-1.0, 1.0);
    w[i] = data.uniform(-1.0, 1.0);
  }
  Rng r1(99), r2(99);
  const phot::AnalogNoiseConfig noise;
  EXPECT_DOUBLE_EQ(bank.dot(a, w, r1, noise), bank.dot(a, w, r2, noise));
}

TEST(Invariants, CoherentSumPermutationInvariantNoiseless) {
  const tron::TronConfig cfg = tron::default_tron_config();
  const phot::CoherentSummationUnit unit(cfg.bank, cfg.homodyne, 8);
  phot::AnalogNoiseConfig off;
  off.dac_quantization = false;
  off.mr_tuning_error = false;
  off.heterodyne_crosstalk = false;
  off.detector_noise = false;
  off.adc_quantization = false;
  Rng rng(3);
  const std::vector<double> v{0.1, -0.4, 0.3, 0.25};
  const std::vector<double> shuffled{0.25, 0.3, -0.4, 0.1};
  EXPECT_NEAR(unit.sum(v, rng, off), unit.sum(shuffled, rng, off), 1e-12);
}

TEST(Invariants, WdmBestPointAppearsInSweep) {
  const phot::WdmLinkDesigner d(phot::MicroringDesign{}, phot::PhotodetectorConfig{},
                                phot::VcselConfig{}, phot::LossStack{});
  const phot::WdmSearchSpace space;
  const auto best = d.best(space);
  ASSERT_TRUE(best.has_value());
  bool found = false;
  for (const auto& p : d.sweep(space)) {
    if (p.quality_factor == best->quality_factor && p.channel_count == best->channel_count) {
      found = true;
      EXPECT_TRUE(p.feasible);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Invariants, AreaTotalsEqualItemSums) {
  for (const phot::AreaReport& r :
       {tron::TronAccelerator(tron::default_tron_config()).area(),
        ghost::GhostAccelerator(ghost::default_ghost_config()).area()}) {
    double sum = 0.0;
    for (const auto& item : r.items) sum += item.total_m2;
    EXPECT_NEAR(r.total_m2(), sum, 1e-15);
    EXPECT_LE(r.photonic_m2(), r.total_m2());
  }
}

TEST(Invariants, SymmetrisedGraphHasSymmetricAdjacency) {
  const graph::CsrGraph g = graph::erdos_renyi(64, 128, 9);
  for (graph::NodeId v = 0; v < 64; ++v) {
    for (const graph::NodeId u : g.neighbors(v)) {
      bool back = false;
      for (const graph::NodeId w : g.neighbors(u)) {
        if (w == v) back = true;
      }
      EXPECT_TRUE(back) << v << "->" << u;
    }
  }
}

TEST(Invariants, OpCountsMatchBetweenPlatformsAndAccelerators) {
  // Fair comparison requires every platform to be charged the same op count.
  const auto f = sim::run_fig9_gops_llm(arch::TronAdapter(tron::default_tron_config()));
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      EXPECT_EQ(f.reports[w][p].op_count, f.reports[w][0].op_count)
          << f.workloads[w] << " " << f.platforms[p];
    }
  }
}

TEST(Invariants, GenerationOpsMatchFullPassAtSameLength) {
  // A decode step at context L does the work of one new token: summing steps
  // 1..L must stay below one full L-token pass (which also recomputes the
  // KV projections attention for every earlier token pair).
  const auto model = nn::gpt2_small(128);
  std::size_t decode_total = 0;
  for (std::size_t ctx = 1; ctx <= 128; ++ctx) {
    decode_total += nn::generation_step_macs(model, ctx);
  }
  EXPECT_LT(decode_total, model.mac_count());
  EXPECT_GT(decode_total, model.mac_count() / 2);  // same order of work
}

}  // namespace
}  // namespace lumos
