// Unit tests for lumos::common — RNG determinism/statistics, descriptive
// stats, unit conversions, error macros, and the table reporter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace lumos {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 3.0);
  }
  EXPECT_LT(lo, -1.8);
  EXPECT_GT(hi, 2.8);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<std::uint32_t> v(100);
  for (std::uint32_t i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  std::vector<std::uint32_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, MeanAndExtrema) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(min_value(v), 1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 10.0, 100.0};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
  EXPECT_THROW((void)geometric_mean(std::vector<double>{1.0, -1.0}), InvalidArgument);
}

TEST(Stats, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_EQ(linspace(3.0, 9.0, 1).size(), 1u);
}

TEST(Stats, Logspace) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[3], 1000.0, 1e-9);
}

TEST(Units, DbRoundTrip) {
  for (const double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(units::linear_to_db(units::db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, DbmConversions) {
  EXPECT_NEAR(units::dbm_to_watts(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(units::dbm_to_watts(30.0), 1.0, 1e-9);
  EXPECT_NEAR(units::watts_to_dbm(1e-6), -30.0, 1e-9);
}

TEST(Units, AttenuateAppliesLoss) {
  EXPECT_NEAR(units::attenuate(1.0, 3.0103), 0.5, 1e-4);
  EXPECT_NEAR(units::attenuate(2e-3, 0.0), 2e-3, 1e-15);
}

TEST(Units, PrefixHelpers) {
  EXPECT_DOUBLE_EQ(units::ghz(10.0), 1e10);
  EXPECT_DOUBLE_EQ(units::nm(1550.0), 1.55e-6);
  EXPECT_DOUBLE_EQ(units::to_nm(1.55e-6), 1550.0);
  EXPECT_DOUBLE_EQ(units::fj(70.0), 7e-14);
  EXPECT_DOUBLE_EQ(units::to_gops(1e12), 1000.0);
}

TEST(Error, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(LUMOS_EXPECTS(false), InvalidArgument);
  EXPECT_NO_THROW(LUMOS_EXPECTS(true));
  EXPECT_THROW(LUMOS_EXPECTS_MSG(1 == 2, "message"), InvalidArgument);
}

TEST(Error, EnsuresThrowsInternalError) {
  EXPECT_THROW(LUMOS_ENSURES(false), InternalError);
}

TEST(Error, MessageContainsExpressionAndNote) {
  try {
    LUMOS_EXPECTS_MSG(0 > 1, "zero is not greater");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 > 1"), std::string::npos);
    EXPECT_NE(what.find("zero is not greater"), std::string::npos);
  }
}

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.add_row({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.500"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSeparators) {
  Table t;
  t.add_row({"a,b", "plain"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "\"a,b\",plain\n");
}

TEST(Table, NumFormatsExtremes) {
  EXPECT_NE(Table::num(1.23456e12).find('e'), std::string::npos);
  EXPECT_NE(Table::num(1.23456e-9).find('e'), std::string::npos);
  EXPECT_EQ(Table::num(0.0), "0.000");
}

// ---------------------------------------------------------------------------
// json_escape (shared by every JSON writer: benches, campaign dumps, CLI)
// ---------------------------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("tron-eco @ 0.5x"), "tron-eco @ 0.5x");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b\\\\c"), "a\\\\b\\\\\\\\c");
  EXPECT_EQ(json_escape("\"\\\""), "\\\"\\\\\\\"");
}

TEST(JsonEscape, EscapesShortFormControlCharacters) {
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
}

TEST(JsonEscape, EscapesRemainingControlCharactersAsUnicode) {
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(json_escape("\x01"), "\\u0001");
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  EXPECT_EQ(json_escape("bell\x07!"), "bell\\u0007!");
  // 0x20 (space) and above pass through untouched.
  EXPECT_EQ(json_escape(" ~"), " ~");
}

// Property sweep: PCG next_below stays unbiased enough across bounds.
class RngBoundSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RngBoundSweep, RoughlyUniform) {
  const std::uint32_t bound = GetParam();
  Rng rng(bound * 2654435761u + 1);
  std::vector<int> hist(bound, 0);
  const int n = 2000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) ++hist[rng.next_below(bound)];
  const double expected = static_cast<double>(n) / bound;
  for (std::uint32_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(hist[b], expected, 5.0 * std::sqrt(expected)) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep, ::testing::Values(2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace lumos
