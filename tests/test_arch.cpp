// Tests for the `arch` accelerator abstraction: the tagged Workload type,
// the TRON/GHOST adapters, the spec registry, and — most importantly — parity
// pins proving the refactored estimate and serve paths are bit-identical to
// the pre-refactor concrete-type code: adapters vs `tron::TronAccelerator` /
// `ghost::GhostAccelerator` PerfReports, and `serve::simulate` vs an
// independent re-implementation of the original event loop written directly
// against the concrete accelerators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "perf_report_matchers.hpp"
#include "serve/campaign.hpp"
#include "serve/simulator.hpp"
#include "sim/figures.hpp"
#include "sim/registry.hpp"

namespace lumos::arch {
namespace {

using lumos::testing::expect_reports_identical;

// serve::Scenario over an explicit pre-materialised trace.
serve::FleetMetrics simulate_trace(serve::FleetConfig fleet, serve::WorkloadCatalog catalog,
                                   std::vector<serve::Request> trace,
                                   serve::SchedulerKind scheduler,
                                   const serve::BatchPolicy& policy,
                                   const serve::SimConfig& sim = {}) {
  serve::Scenario scenario;
  scenario.fleet = std::move(fleet);
  scenario.catalog = std::move(catalog);
  scenario.scheduler = scheduler;
  scenario.batch = policy;
  scenario.sim = sim;
  scenario.trace = std::move(trace);
  return serve::simulate(scenario);
}

// ---------------------------------------------------------------------------
// Workload tagged union
// ---------------------------------------------------------------------------

TEST(Workload, TransformerAccessorsAndKind) {
  const Workload w = Workload::transformer("bert", sim::transformer_by_name("bert-base"));
  EXPECT_EQ(w.kind(), WorkloadKind::kTransformer);
  EXPECT_EQ(w.name(), "bert");
  EXPECT_EQ(w.transformer_config().name, sim::transformer_by_name("bert-base").name);
  EXPECT_THROW((void)w.gnn_model(), InvalidArgument);
  EXPECT_THROW((void)w.dataset(), InvalidArgument);
}

TEST(Workload, GnnAccessorsAndKind) {
  const Workload w =
      Workload::gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"));
  EXPECT_EQ(w.kind(), WorkloadKind::kGnn);
  EXPECT_EQ(w.dataset().name, sim::dataset_by_name("cora").name);
  EXPECT_THROW((void)w.transformer_config(), InvalidArgument);
}

TEST(Workload, WrongKindErrorNamesWorkloadAndKind) {
  const Workload w = Workload::transformer("vit", sim::transformer_by_name("vit"));
  try {
    (void)w.gnn_model();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("vit"), std::string::npos) << what;
    EXPECT_NE(what.find("transformer"), std::string::npos) << what;
  }
}

TEST(Workload, CopiesShareTheDataset) {
  const Workload a =
      Workload::gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"));
  const Workload b = a;
  EXPECT_EQ(&a.dataset(), &b.dataset());
}

// ---------------------------------------------------------------------------
// Adapters: bit-identical delegation + kind gating
// ---------------------------------------------------------------------------

TEST(Adapters, TronEstimatesBitIdenticalToConcreteAccelerator) {
  const tron::TronConfig config = tron::default_tron_config();
  const TronAdapter adapter(config);
  const tron::TronAccelerator concrete(config);
  for (const char* name : {"bert-base", "gpt2"}) {
    const nn::TransformerConfig model = sim::transformer_by_name(name, 128);
    const Workload w = Workload::transformer(name, model);
    expect_reports_identical(adapter.estimate(w), concrete.estimate(model));
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      expect_reports_identical(adapter.estimate_batch(w, batch),
                               concrete.estimate_batch(model, batch));
    }
  }
  EXPECT_EQ(adapter.static_power_w(), concrete.static_power_w());
}

TEST(Adapters, GhostEstimatesBitIdenticalToConcreteAccelerator) {
  const ghost::GhostConfig config = ghost::default_ghost_config();
  const GhostAdapter adapter(config);
  const ghost::GhostAccelerator concrete(config);
  const gnn::GnnModelConfig model = sim::gnn_by_name("graphsage");
  const Workload w = Workload::gnn("graphsage/citeseer", model,
                                   sim::dataset_by_name("citeseer"));
  expect_reports_identical(adapter.estimate(w), concrete.estimate(model, w.dataset()));
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
    expect_reports_identical(adapter.estimate_batch(w, batch),
                             concrete.estimate_batch(model, w.dataset(), batch));
  }
  EXPECT_EQ(adapter.static_power_w(), concrete.static_power_w());
}

TEST(Adapters, RefuseForeignWorkloadKindsNamingBothSides) {
  const TronAdapter tron_acc(tron::default_tron_config());
  const Workload gnn_w =
      Workload::gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"));
  EXPECT_FALSE(tron_acc.can_serve(gnn_w));
  try {
    (void)tron_acc.estimate(gnn_w);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tron"), std::string::npos) << what;
    EXPECT_NE(what.find("gcn/cora"), std::string::npos) << what;
  }
}

TEST(Adapters, BreakdownEntriesCoverTheBreakdownFields) {
  const TronAdapter acc(tron::default_tron_config());
  const PerfReport r =
      acc.estimate(Workload::transformer("bert", sim::transformer_by_name("bert-base")));
  double time_sum = 0.0;
  double energy_sum = 0.0;
  for (const BreakdownEntry& e : breakdown_entries(r)) {
    time_sum += e.time_s;
    energy_sum += e.energy_j;
  }
  const PerfBreakdown& b = r.breakdown;
  EXPECT_DOUBLE_EQ(time_sum, b.matmul_time_s + b.softmax_time_s + b.elementwise_time_s +
                                 b.aggregation_time_s + b.memory_stall_s);
  EXPECT_DOUBLE_EQ(energy_sum,
                   b.laser_dac_adc_energy_j + b.partial_sum_energy_j + b.softmax_energy_j +
                       b.elementwise_energy_j + b.aggregation_energy_j + b.sram_energy_j +
                       b.dram_energy_j);
}

// ---------------------------------------------------------------------------
// Spec registry
// ---------------------------------------------------------------------------

TEST(SpecRegistry, AllNamesRoundTripAndSelfDescribe) {
  for (const std::string& name : spec_names()) {
    const auto acc = make_accelerator(name);
    ASSERT_NE(acc, nullptr) << name;
    EXPECT_EQ(acc->spec().name, name);
    EXPECT_GT(acc->static_power_w(), 0.0) << name;
  }
}

TEST(SpecRegistry, UnknownNameListsAcceptedNames) {
  try {
    (void)make_accelerator("quantum9000");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum9000"), std::string::npos) << what;
    for (const std::string& name : spec_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << what << " missing " << name;
    }
  }
}

TEST(SpecRegistry, EcoVariantsTradeStaticPowerForLatency) {
  const auto tron_full = make_accelerator("tron");
  const auto tron_eco = make_accelerator("tron-eco");
  EXPECT_LT(tron_eco->static_power_w(), tron_full->static_power_w());
  // Latency can only get worse with half the fabric (equal when the model is
  // memory-bound rather than array-bound).
  const Workload w = Workload::transformer("bert", sim::transformer_by_name("bert-base"));
  EXPECT_GE(tron_eco->estimate(w).latency_s, tron_full->estimate(w).latency_s);
  const auto ghost_full = make_accelerator("ghost");
  const auto ghost_eco = make_accelerator("ghost-eco");
  EXPECT_LT(ghost_eco->static_power_w(), ghost_full->static_power_w());
}

TEST(SpecRegistry, ScaledVariantsParseAndScaleTheFabric) {
  const tron::TronConfig base = tron_config_by_name("tron");
  const tron::TronConfig half = tron_config_by_name("tron@0.5");
  EXPECT_EQ(half.head_units, std::max<std::size_t>(1, base.head_units / 2));
  EXPECT_EQ(half.ff_arrays, std::max<std::size_t>(1, base.ff_arrays / 2));
  const ghost::GhostConfig doubled = ghost_config_by_name("ghost@2");
  EXPECT_EQ(doubled.lanes, 2 * ghost_config_by_name("ghost").lanes);
  // Scaled names key their own specs (and so their own fleet caches).
  EXPECT_EQ(make_accelerator("tron@0.5")->spec().name, "tron@0.5");
  // Tiny scales clamp to one unit instead of zero.
  EXPECT_GE(tron_config_by_name("tron@0.001").head_units, 1u);
}

TEST(SpecRegistry, BadScaleSuffixesThrow) {
  EXPECT_THROW((void)make_accelerator("tron@"), InvalidArgument);
  EXPECT_THROW((void)make_accelerator("tron@abc"), InvalidArgument);
  EXPECT_THROW((void)make_accelerator("tron@0"), InvalidArgument);
  EXPECT_THROW((void)make_accelerator("tron@-1"), InvalidArgument);
  EXPECT_THROW((void)make_accelerator("tron@1e30"), InvalidArgument);  // llround overflow
  EXPECT_THROW((void)make_accelerator("bogus@2"), InvalidArgument);
}

TEST(SpecRegistry, RegistryAcceleratorMatchesDirectConstruction) {
  const auto from_registry = make_accelerator("tron");
  const tron::TronAccelerator direct(tron::default_tron_config());
  const Workload w = Workload::transformer("gpt2", sim::transformer_by_name("gpt2", 256));
  expect_reports_identical(from_registry->estimate(w),
                           direct.estimate(w.transformer_config()));
}

// ---------------------------------------------------------------------------
// Serve-path parity: the new simulator vs an independent re-implementation
// of the pre-refactor event loop written against the concrete accelerators.
// ---------------------------------------------------------------------------

// Reference FIFO fleet simulation (the original algorithm, restated): strict
// arrival order, one request per dispatch, first-idle routing, completions
// processed before arrivals at equal times.  Uses `tron::TronAccelerator`
// directly — no arch, no caches, no masks.
struct ReferenceResult {
  std::size_t completed = 0;
  double p50 = 0.0, p99 = 0.0;
  double mean_latency = 0.0;
  double fleet_energy_j = 0.0;
  std::size_t dispatches = 0;
  double duration_s = 0.0;
};

ReferenceResult reference_fifo_tron(const serve::WorkloadCatalog& catalog,
                                    const std::vector<serve::Request>& trace,
                                    std::size_t n_acc) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  std::vector<PerfReport> reports;
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    reports.push_back(acc.estimate_batch(catalog.workload(w).transformer_config(), 1));
  }

  std::vector<double> free_at(n_acc, 0.0);
  std::vector<double> busy(n_acc, 0.0);
  struct Done {
    double completion_s;
    std::uint64_t seq;  // dispatch order (arrival order under FIFO)
    double latency_s;
    double energy_j;
  };
  std::vector<Done> done;
  double last_completion = 0.0;

  // FIFO with first-idle routing degenerates to: each request starts at
  // max(arrival, earliest-free accelerator), on the lowest-index accelerator
  // free at that instant — equal-time completion/arrival ordering included,
  // because a completion at time t frees its slot before an arrival at t
  // dispatches (completions process first in the original loop).
  std::uint64_t seq = 0;
  for (const serve::Request& r : trace) {
    double earliest = free_at[0];
    for (std::size_t i = 1; i < n_acc; ++i) earliest = std::min(earliest, free_at[i]);
    const double start = std::max(r.arrival_s, earliest);
    std::size_t slot = 0;
    while (slot < n_acc && free_at[slot] > start) ++slot;
    const PerfReport& rep = reports[r.workload];
    free_at[slot] = start + rep.latency_s;
    busy[slot] += rep.latency_s;
    done.push_back({free_at[slot], seq++, free_at[slot] - r.arrival_s, rep.total_energy_j});
    last_completion = std::max(last_completion, free_at[slot]);
  }

  // The original loop accumulates sums in completion order (time, then
  // dispatch seq); replay that order so the floating-point sums are
  // bit-identical, not merely equal to rounding.
  std::sort(done.begin(), done.end(), [](const Done& a, const Done& b) {
    if (a.completion_s != b.completion_s) return a.completion_s < b.completion_s;
    return a.seq < b.seq;
  });
  std::vector<double> latencies;
  double dispatched_j = 0.0;
  double mean_sum = 0.0;
  for (const Done& d : done) {
    latencies.push_back(d.latency_s);
    mean_sum += d.latency_s;
    dispatched_j += d.energy_j;
  }

  ReferenceResult out;
  out.completed = trace.size();
  out.dispatches = trace.size();
  out.duration_s = last_completion;
  out.mean_latency = mean_sum / static_cast<double>(trace.size());
  double idle_j = 0.0;
  for (std::size_t i = 0; i < n_acc; ++i) {
    idle_j += std::max(0.0, last_completion - busy[i]) * acc.static_power_w();
  }
  out.fleet_energy_j = dispatched_j + idle_j;
  out.p50 = serve::percentile(latencies, 0.50);
  out.p99 = serve::percentile(latencies, 0.99);
  return out;
}

TEST(ServeParity, SimulatorMatchesReferenceFifoLoopBitForBit) {
  const serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  serve::TraceConfig tc;
  tc.offered_qps = 0.8 * serve::fleet_capacity_qps(catalog, "tron", 3, 1);
  tc.request_count = 4000;
  tc.seed = 77;
  const std::vector<serve::Request> trace = serve::generate_trace(catalog, tc);

  const serve::FleetMetrics m =
      simulate_trace(serve::FleetConfig::homogeneous("tron", 3), catalog, trace,
                      serve::SchedulerKind::kFifo, serve::BatchPolicy{});
  const ReferenceResult ref = reference_fifo_tron(catalog, trace, 3);

  EXPECT_EQ(m.completed, ref.completed);
  EXPECT_EQ(m.dispatches, ref.dispatches);
  EXPECT_EQ(m.duration_s, ref.duration_s);
  EXPECT_EQ(m.mean_latency_s, ref.mean_latency);
  EXPECT_EQ(m.p50_latency_s, ref.p50);
  EXPECT_EQ(m.p99_latency_s, ref.p99);
  EXPECT_EQ(m.fleet_energy_j, ref.fleet_energy_j);
}

// The full-path pin for the batched scheduler: the arch-routed simulator's
// service times must be exactly the concrete accelerators' estimates, so a
// single-accelerator dynamic-batch run must finish at the sum of its batch
// latencies (no queue-induced drift, no cache divergence).
TEST(ServeParity, BatchedServiceTimesComeFromConcreteEstimates) {
  serve::WorkloadCatalog catalog;
  catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128));
  // A burst of 8 simultaneous requests through max_batch=4: exactly two
  // batch-of-4 dispatches, back to back.
  std::vector<serve::Request> trace;
  for (std::uint64_t i = 0; i < 8; ++i) trace.push_back({i, 0.0, 0});
  serve::BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_s = 0.0;
  const serve::FleetMetrics m =
      simulate_trace(serve::FleetConfig::homogeneous("tron", 1), catalog, trace,
                      serve::SchedulerKind::kDynamicBatch, policy);
  const tron::TronAccelerator acc(tron::default_tron_config());
  const PerfReport batch4 =
      acc.estimate_batch(sim::transformer_by_name("bert-base", 128), 4);
  EXPECT_EQ(m.dispatches, 2u);
  EXPECT_EQ(m.duration_s, 2.0 * batch4.latency_s);
  EXPECT_EQ(m.max_latency_s, 2.0 * batch4.latency_s);
  EXPECT_EQ(m.p50_latency_s, batch4.latency_s);
}

// Campaign-level pin: the arch-routed campaign over the default TRON catalog
// must be bit-identical to a direct simulate() of the same grid point.
TEST(ServeParity, CampaignMatchesDirectSimulation) {
  const serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  serve::CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.6 * serve::fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {serve::SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.requests_per_point = 3000;
  cfg.seed = 5;
  const std::vector<serve::CampaignPoint> points = serve::run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 1u);

  serve::TraceConfig tc;
  tc.offered_qps = cfg.qps[0];
  tc.request_count = cfg.requests_per_point;
  tc.seed = cfg.seed + 0x9E3779B9u * 1;
  serve::BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_s = cfg.max_wait_s;
  serve::SimConfig sim_cfg;
  sim_cfg.slo_scale = cfg.slo_scale;
  const serve::FleetMetrics direct =
      simulate_trace(serve::FleetConfig::homogeneous("tron", 2), catalog,
                      serve::generate_trace(catalog, tc), serve::SchedulerKind::kDynamicBatch,
                      policy, sim_cfg);
  EXPECT_EQ(points[0].metrics.p99_latency_s, direct.p99_latency_s);
  EXPECT_EQ(points[0].metrics.goodput_qps, direct.goodput_qps);
  EXPECT_EQ(points[0].metrics.fleet_energy_j, direct.fleet_energy_j);
}

// Figure-path parity: the polymorphic figure runner must reproduce the
// concrete accelerators' estimates cell by cell.
TEST(ServeParity, FigureRunnerReportsMatchConcreteEstimates) {
  const tron::TronConfig config = tron::default_tron_config();
  const sim::FigureData f = sim::run_fig8_epb_llm(TronAdapter(config));
  const tron::TronAccelerator concrete(config);
  const std::vector<arch::Workload> workloads = sim::llm_eval_workloads();
  ASSERT_EQ(f.workloads.size(), workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    expect_reports_identical(f.reports[w][0],
                             concrete.estimate(workloads[w].transformer_config()));
  }
}

}  // namespace
}  // namespace lumos::arch
