// Tests for the extension features: area/floorplan model, batched inference,
// autoregressive generation, and the design-space sensitivity sweeps.
#include <gtest/gtest.h>

#include "photonics/area.hpp"
#include "sim/sensitivity.hpp"

namespace lumos {
namespace {

TEST(Area, BankArrayAccountsEveryDeviceClass) {
  const phot::AreaReport r = phot::bank_array_area(16, 64);
  EXPECT_GE(r.items.size(), 6u);
  EXPECT_GT(r.total_m2(), 0.0);
  EXPECT_GT(r.photonic_m2(), 0.0);
  EXPECT_LT(r.photonic_m2(), r.total_m2());
  // 2 banks of K rings on each of N waveguides.
  EXPECT_EQ(r.items[0].count, 2u * 16u * 64u);
}

TEST(Area, ScalesWithGeometry) {
  const double small = phot::bank_array_area(8, 16).total_m2();
  const double big = phot::bank_array_area(16, 64).total_m2();
  EXPECT_GT(big, 2.0 * small);
}

TEST(Area, TronFloorplanIsChipScale) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const phot::AreaReport r = acc.area();
  // A credible accelerator die: between a few mm^2 and a reticle.
  EXPECT_GT(r.total_mm2(), 5.0);
  EXPECT_LT(r.total_mm2(), 900.0);
}

TEST(Area, GhostFloorplanIsChipScale) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const phot::AreaReport r = acc.area();
  EXPECT_GT(r.total_mm2(), 5.0);
  EXPECT_LT(r.total_mm2(), 900.0);
}

TEST(Area, NegativeAreaRejected) {
  phot::AreaReport r;
  EXPECT_THROW(r.add("bad", 1, -1.0), InvalidArgument);
}

TEST(Batch, BatchOneMatchesEstimate) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::bert_base();
  const PerfReport a = acc.estimate(model);
  const PerfReport b = acc.estimate_batch(model, 1);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
}

TEST(Batch, AmortisesWeightStream) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::bert_base();
  const PerfReport b1 = acc.estimate_batch(model, 1);
  const PerfReport b16 = acc.estimate_batch(model, 16);
  // Throughput improves because the per-layer weight stream is shared.
  EXPECT_GT(b16.ops_per_second(), 1.5 * b1.ops_per_second());
  // Per-sequence latency shrinks.
  EXPECT_LT(b16.latency_s / 16.0, b1.latency_s);
  // Stall share shrinks.
  EXPECT_LT(b16.breakdown.memory_stall_s / b16.latency_s,
            b1.breakdown.memory_stall_s / b1.latency_s + 1e-12);
}

TEST(Batch, OpCountScalesLinearly) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::gpt2_small();
  EXPECT_EQ(acc.estimate_batch(model, 8).op_count, 8 * model.op_count());
}

TEST(Batch, EpbImprovesWithBatch) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::bert_base();
  EXPECT_LT(acc.estimate_batch(model, 16).energy_per_bit_j(),
            acc.estimate_batch(model, 1).energy_per_bit_j());
}

TEST(Generation, TraceShrinksToSingleToken) {
  const auto model = nn::gpt2_small();
  const auto trace = nn::generation_layer_trace(model, 100);
  for (const auto& op : trace) {
    EXPECT_EQ(op.m, 1u) << op.label;
  }
}

TEST(Generation, StepMacsGrowWithContext) {
  const auto model = nn::gpt2_small();
  EXPECT_GT(nn::generation_step_macs(model, 512), nn::generation_step_macs(model, 64));
}

TEST(Generation, StepMacsMatchClosedForm) {
  const auto model = nn::gpt2_small();
  const std::size_t ctx = 128;
  // Per layer: 4 d^2 (projections) + 2*ctx*d (attention) + 2 d d_ff (FF).
  const std::size_t d = model.d_model;
  const std::size_t per_layer = 4 * d * d + 2 * ctx * d + 2 * d * model.d_ff;
  EXPECT_EQ(nn::generation_step_macs(model, ctx), per_layer * model.layers);
}

TEST(Generation, DecodeIsMemoryBound) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const PerfReport r = acc.estimate_generation(nn::gpt2_small(), 64, 32);
  // Single-token decode streams the full weights per step: stalls dominate.
  EXPECT_GT(r.breakdown.memory_stall_s, 0.5 * r.latency_s);
}

TEST(Generation, LatencyScalesWithTokens) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::gpt2_small();
  const PerfReport t16 = acc.estimate_generation(model, 64, 16);
  const PerfReport t64 = acc.estimate_generation(model, 64, 64);
  EXPECT_NEAR(t64.latency_s, 4.0 * t16.latency_s, 0.2 * t64.latency_s);
}

TEST(Generation, ThroughputFarBelowBatchedInference) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::gpt2_small();
  EXPECT_LT(acc.estimate_generation(model, 64, 32).ops_per_second(),
            0.2 * acc.estimate_batch(model, 16).ops_per_second());
}

TEST(Generation, InvalidArgsRejected) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  EXPECT_THROW((void)acc.estimate_generation(nn::gpt2_small(), 0, 8), InvalidArgument);
  EXPECT_THROW((void)acc.estimate_generation(nn::gpt2_small(), 8, 0), InvalidArgument);
}

TEST(Seq2Seq, OriginalTransformerConfig) {
  const auto c = nn::original_transformer();
  EXPECT_EQ(c.kind, nn::TransformerKind::kSeq2Seq);
  EXPECT_EQ(c.layers, 6u);
  EXPECT_EQ(c.decoder_layers, 6u);
  EXPECT_EQ(c.d_model, 512u);
  EXPECT_EQ(c.heads, 8u);
  EXPECT_EQ(c.d_ff, 2048u);
  // ~44M encoder/decoder weights for the base model (no embeddings).
  EXPECT_GT(c.parameter_count(), 40e6);
  EXPECT_LT(c.parameter_count(), 50e6);
}

TEST(Seq2Seq, DecoderTraceMacsMatchClosedForm) {
  const auto c = nn::original_transformer(96, 128);
  std::size_t enc_macs = 0;
  for (const auto& op : nn::layer_trace(c)) enc_macs += op.macs();
  std::size_t dec_macs = 0;
  for (const auto& op : nn::decoder_layer_trace(c)) dec_macs += op.macs();
  EXPECT_EQ(enc_macs * c.layers + dec_macs * c.decoder_layers, c.mac_count());
}

TEST(Seq2Seq, DecoderTraceHasCrossAttention) {
  const auto c = nn::original_transformer(96, 128);
  const auto trace = nn::decoder_layer_trace(c);
  // Two softmaxes per decoder layer: masked self-attention + cross-attention.
  std::size_t softmaxes = 0;
  bool saw_src_dim = false;
  for (const auto& op : trace) {
    if (op.kind == nn::OpKind::kSoftmax) ++softmaxes;
    if (op.kind == nn::OpKind::kMatMul && op.m == 96) saw_src_dim = true;  // K/V over src
  }
  EXPECT_EQ(softmaxes, 2u);
  EXPECT_TRUE(saw_src_dim);
}

TEST(Seq2Seq, TronEstimatesSeq2Seq) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const PerfReport r = acc.estimate(nn::original_transformer());
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_EQ(r.op_count, nn::original_transformer().op_count());
  // More work than the encoder-only half alone.
  nn::TransformerConfig enc_only = nn::original_transformer();
  enc_only.decoder_layers = 0;
  EXPECT_GT(r.latency_s, acc.estimate(enc_only).latency_s);
}

TEST(ArgmaxAgreement, PerfectAndBrokenCases) {
  nn::Matrix a(2, 3);
  a(0, 1) = 1.0;  // row 0 argmax = 1
  a(1, 2) = 1.0;  // row 1 argmax = 2
  nn::Matrix b = a;
  EXPECT_DOUBLE_EQ(nn::argmax_agreement(a, b), 1.0);
  b(1, 0) = 2.0;  // row 1 argmax flips to 0
  EXPECT_DOUBLE_EQ(nn::argmax_agreement(a, b), 0.5);
}

TEST(ArgmaxAgreement, NoisyGnnPredictionsMostlyAgree) {
  // The fidelity proxy: noisy photonic GNN inference predicts the same class
  // as the exact reference for the vast majority of nodes.
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gcn_model(), ds, 31);
  Rng data(32);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(33);
  const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, phot::AnalogNoiseConfig{});
  const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
  // Untrained random weights produce near-tie logits, so this is a pessimistic
  // lower bound: a trained model's decision margins are far wider than the
  // analog noise (bench_fidelity reports the error magnitudes directly).
  EXPECT_GE(nn::argmax_agreement(got, want), 0.6);
}

TEST(ArgmaxAgreement, ShapeMismatchRejected) {
  nn::Matrix a(2, 3), b(3, 2);
  EXPECT_THROW((void)nn::argmax_agreement(a, b), InvalidArgument);
}

TEST(Sensitivity, TronSweepCoversEveryKnob) {
  const auto points = sim::tron_sensitivity(tron::default_tron_config(), nn::bert_base());
  EXPECT_GE(points.size(), 20u);
  std::size_t defaults = 0;
  for (const auto& p : points) {
    EXPECT_GT(p.latency_s, 0.0) << p.knob;
    EXPECT_GT(p.ops_per_second, 0.0) << p.knob;
    if (p.is_default) ++defaults;
  }
  EXPECT_EQ(defaults, 5u);  // one default mark per knob family
}

TEST(Sensitivity, GhostSweepCoversEveryKnob) {
  const auto points = sim::ghost_sensitivity(ghost::default_ghost_config(),
                                             gnn::gcn_model(), graph::synthetic_cora());
  EXPECT_GE(points.size(), 20u);
  std::size_t defaults = 0;
  for (const auto& p : points) {
    EXPECT_GT(p.energy_per_bit_j, 0.0) << p.knob;
    if (p.is_default) ++defaults;
  }
  EXPECT_EQ(defaults, 5u);
}

TEST(Sensitivity, MoreDramBandwidthNeverHurtsTron) {
  const auto points = sim::tron_sensitivity(tron::default_tron_config(), nn::bert_base());
  double prev_latency = 1e300;
  for (const auto& p : points) {
    if (p.knob != "dram_gb_per_s") continue;
    EXPECT_LE(p.latency_s, prev_latency + 1e-12);
    prev_latency = p.latency_s;
  }
}

TEST(Sensitivity, TableRendersAllPoints) {
  const auto points = sim::ghost_sensitivity(ghost::default_ghost_config(),
                                             gnn::gcn_model(), graph::synthetic_cora());
  const Table t = sim::sensitivity_table("probe", points);
  EXPECT_EQ(t.row_count(), points.size() + 1);
}

}  // namespace
}  // namespace lumos
