// Tests for the process-variation Monte-Carlo model (the paper's named
// open challenge, implemented as an extension).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "photonics/variation.hpp"

namespace lumos::phot {
namespace {

ProcessVariationModel make_model(double local_nm, double die_nm) {
  ProcessVariationConfig c;
  c.local_sigma_m = local_nm * 1e-9;
  c.die_sigma_m = die_nm * 1e-9;
  c.monte_carlo_dies = 100;
  return ProcessVariationModel(c, MicroringDesign{}, TuningCircuitConfig{});
}

TEST(Variation, ZeroVariationNeedsNoCorrection) {
  const ProcessVariationModel m = make_model(0.0, 0.0);
  const VariationReport r = m.run(1);
  EXPECT_DOUBLE_EQ(r.mean_correction_m, 0.0);
  EXPECT_DOUBLE_EQ(r.worst_correction_m, 0.0);
  EXPECT_DOUBLE_EQ(r.yield, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_bank_power_w, 0.0);
}

TEST(Variation, CorrectionsBoundedByFsr) {
  const ProcessVariationModel m = make_model(0.5, 1.0);
  const MicroringResonator ring{MicroringDesign{}};
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    for (const double c : m.draw_die_corrections(rng)) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, ring.free_spectral_range());
    }
  }
}

TEST(Variation, MoreVariationCostsMorePower) {
  const VariationReport small = make_model(0.1, 0.2).run(3);
  const VariationReport large = make_model(0.6, 1.2).run(3);
  EXPECT_GT(large.mean_correction_m, small.mean_correction_m);
  EXPECT_GT(large.mean_bank_power_w, small.mean_bank_power_w);
}

TEST(Variation, P95AtLeastMean) {
  const VariationReport r = make_model(0.4, 0.8).run(4);
  EXPECT_GE(r.p95_bank_power_w, r.mean_bank_power_w * 0.99);
}

TEST(Variation, RealisticVariationHasHighYield) {
  // With the 3-sigma blue bias nearly every ring needs only a small red trim
  // within the TO range; the rare full-FSR wrap costs a little yield.
  const VariationReport r = make_model(0.4, 0.8).run(5);
  EXPECT_GE(r.yield, 0.9);
  EXPECT_GT(r.mean_bank_power_w, 0.0);
}

TEST(Variation, CrampedTuningRangeLosesYield) {
  ProcessVariationConfig c;
  c.local_sigma_m = 0.5e-9;
  c.die_sigma_m = 1.0e-9;
  c.monte_carlo_dies = 100;
  TuningCircuitConfig tuning;
  tuning.to_max_shift_nm = 1.0;  // far below the ~18 nm FSR fold
  const ProcessVariationModel m(c, MicroringDesign{}, tuning);
  EXPECT_LT(m.run(6).yield, 1.0);
}

TEST(Variation, DeterministicPerSeed) {
  const ProcessVariationModel m = make_model(0.4, 0.8);
  const VariationReport a = m.run(7);
  const VariationReport b = m.run(7);
  EXPECT_DOUBLE_EQ(a.mean_bank_power_w, b.mean_bank_power_w);
  EXPECT_DOUBLE_EQ(a.worst_correction_m, b.worst_correction_m);
}

TEST(Variation, InvalidConfigRejected) {
  ProcessVariationConfig c;
  c.monte_carlo_dies = 0;
  EXPECT_THROW(ProcessVariationModel(c, MicroringDesign{}, TuningCircuitConfig{}),
               lumos::InvalidArgument);
}

// Sigma sweep: yield is monotone non-increasing in variation magnitude when
// the tuning range is the binding constraint.
class SigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaSweep, ReportFieldsConsistent) {
  const VariationReport r = make_model(GetParam(), GetParam() * 2.0).run(8);
  EXPECT_GE(r.worst_correction_m, r.mean_correction_m);
  EXPECT_GE(r.yield, 0.0);
  EXPECT_LE(r.yield, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SigmaSweep, ::testing::Values(0.1, 0.2, 0.4, 0.8));

}  // namespace
}  // namespace lumos::phot
