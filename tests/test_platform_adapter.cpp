// Tests for the electronic platform adapter (arch/platform_adapter.hpp) and
// the hybrid-fleet serving features built on it: registry coverage of the
// paper's comparison set, bit-identical delegation to the concrete roofline
// entry points, the decode step-sum pin, cost-aware routing, dollar-cost
// metrics (attribution, merge, shard parity), and the campaign fleet-template
// axis.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform_adapter.hpp"
#include "arch/registry.hpp"
#include "baselines/platforms.hpp"
#include "common/error.hpp"
#include "perf_report_matchers.hpp"
#include "serve/campaign.hpp"
#include "serve/shard.hpp"
#include "serve/simulator.hpp"
#include "sim/registry.hpp"

namespace lumos {
namespace {

using testing::expect_reports_identical;

// ---------------------------------------------------------------------------
// Adapter delegation: bit-identical to the concrete roofline entry points
// ---------------------------------------------------------------------------

TEST(PlatformAdapter, TransformerEstimatesMatchDirectModelBitForBit) {
  const nn::TransformerConfig model = sim::transformer_by_name("bert-base", 128);
  const arch::Workload w = arch::Workload::transformer("bert-base/128", model);
  for (const baselines::PlatformModel& platform : baselines::llm_baselines()) {
    const arch::PlatformAdapter adapter(platform);
    SCOPED_TRACE(platform.spec().name);
    expect_reports_identical(adapter.estimate(w), platform.estimate_transformer(model));
    EXPECT_TRUE(adapter.can_serve(w));
  }
}

TEST(PlatformAdapter, GnnEstimatesMatchDirectModelBitForBit) {
  const gnn::GnnModelConfig model = sim::gnn_eval_models().front();
  const auto dataset =
      std::make_shared<const graph::GraphDataset>(sim::gnn_eval_datasets().front());
  const arch::Workload w = arch::Workload::gnn("gnn-eval", model, dataset);
  for (const baselines::PlatformModel& platform : baselines::gnn_baselines()) {
    const arch::PlatformAdapter adapter(platform);
    SCOPED_TRACE(platform.spec().name);
    expect_reports_identical(adapter.estimate(w), platform.estimate_gnn(model, *dataset));
    EXPECT_TRUE(adapter.can_serve(w));
  }
}

TEST(PlatformAdapter, StaticPowerIsIdleFractionOfBoardPower) {
  const baselines::PlatformModel v100 = baselines::v100_gpu();
  const arch::PlatformAdapter adapter(v100);
  EXPECT_DOUBLE_EQ(adapter.static_power_w(),
                   v100.spec().idle_power_fraction * v100.spec().board_power_w);
}

// The decode-serving conservation pin, same contract the TRON device honours
// (see test_decode.cpp): at batch 1, `estimate_decode_step` is exactly one
// iteration of `estimate_generation`'s loop.
TEST(PlatformAdapter, BatchOneStepsSumToGenerationEstimate) {
  const nn::TransformerConfig model = sim::transformer_by_name("gpt2", 256);
  const arch::Workload w = arch::Workload::transformer("gpt2/256", model);
  constexpr std::size_t kPrompt = 256;
  constexpr std::size_t kTokens = 6;
  for (const baselines::PlatformModel& platform : baselines::llm_baselines()) {
    const arch::PlatformAdapter adapter(platform);
    SCOPED_TRACE(platform.spec().name);
    ASSERT_TRUE(adapter.can_generate());
    const PerfReport generation = adapter.estimate_generation(w, kPrompt, kTokens);
    double latency = 0.0;
    double dynamic_energy = 0.0;
    for (std::size_t t = 0; t < kTokens; ++t) {
      const PerfReport step = adapter.estimate_decode_step(w, 1, kPrompt + t);
      latency += step.latency_s;
      dynamic_energy += step.dynamic_energy_j;
    }
    EXPECT_DOUBLE_EQ(latency, generation.latency_s);
    EXPECT_DOUBLE_EQ(dynamic_energy, generation.dynamic_energy_j);
  }
}

// A decode step of B lanes re-streams the weights once, so it must cost less
// than B separate batch-1 steps (the continuous-batching win).
TEST(PlatformAdapter, BatchedDecodeStepAmortisesWeightStreaming) {
  const nn::TransformerConfig model = sim::transformer_by_name("bert-base", 128);
  const arch::Workload w = arch::Workload::transformer("bert-base/128", model);
  const arch::PlatformAdapter adapter(baselines::v100_gpu());
  const double one = adapter.estimate_decode_step(w, 1, 128).latency_s;
  const double eight = adapter.estimate_decode_step(w, 8, 128).latency_s;
  EXPECT_GT(one, 0.0);
  EXPECT_LT(eight, 8.0 * one);
  EXPECT_GE(eight, one);
}

// ---------------------------------------------------------------------------
// Registry coverage of the paper's electronic comparison set
// ---------------------------------------------------------------------------

TEST(PlatformRegistry, ServesAllFifteenElectronicSpecs) {
  const std::vector<std::string> electronic = {
      "xeon",  "v100", "tpu-v2", "transpim", "fpga-acc1", "vaqf",  "fpga-acc2", "a100",
      "tpu-v4", "grip", "hygcn",  "engn",     "hw-acc",    "regnn", "regraphx"};
  const std::vector<std::string>& names = arch::spec_names();
  for (const std::string& name : electronic) {
    SCOPED_TRACE(name);
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    EXPECT_TRUE(arch::is_platform_spec(name));
    // Electronic platforms price both kinds, so they serve both.
    EXPECT_TRUE(arch::spec_serves(name, arch::WorkloadKind::kTransformer));
    EXPECT_TRUE(arch::spec_serves(name, arch::WorkloadKind::kGnn));
    const auto acc = arch::make_accelerator(name);
    EXPECT_NE(dynamic_cast<const arch::PlatformAdapter*>(acc.get()), nullptr);
    EXPECT_EQ(acc->spec().name, name);
  }
  // Photonic fabrics are not platforms and still serve their kind only.
  EXPECT_FALSE(arch::is_platform_spec("tron"));
  EXPECT_TRUE(arch::spec_serves("tron", arch::WorkloadKind::kTransformer));
  EXPECT_FALSE(arch::spec_serves("tron", arch::WorkloadKind::kGnn));
}

TEST(PlatformRegistry, ScaledPlatformSpecScalesRooflineAndPower) {
  const baselines::PlatformSpec base = arch::platform_spec_by_name("v100");
  const baselines::PlatformSpec doubled = arch::platform_spec_by_name("v100@2");
  EXPECT_DOUBLE_EQ(doubled.peak_ops_per_s, 2.0 * base.peak_ops_per_s);
  EXPECT_DOUBLE_EQ(doubled.memory_bandwidth_bps, 2.0 * base.memory_bandwidth_bps);
  EXPECT_DOUBLE_EQ(doubled.board_power_w, 2.0 * base.board_power_w);
  EXPECT_TRUE(arch::is_platform_spec("v100@2"));
}

TEST(PlatformRegistry, UnknownSpecErrorEnumeratesGrownNameSet) {
  try {
    (void)arch::make_accelerator("h100");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    for (const char* name : {"tron", "ghost", "v100", "regraphx"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
  EXPECT_THROW((void)arch::spec_serves("h100", arch::WorkloadKind::kTransformer),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Cost-aware routing and dollar-cost metrics
// ---------------------------------------------------------------------------

// One transformer tenant; a hybrid 2-slot fleet (one photonic, one
// electronic); requests spaced so both slots are always idle at dispatch.
serve::Scenario hybrid_trace_scenario(double slo_s, std::size_t requests) {
  serve::Scenario s;
  s.catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128));
  s.catalog.set_slo(0, slo_s);
  s.fleet = serve::FleetConfig::cycled({"tron", "v100"}, 2, serve::RoutingPolicy::kCostAware);
  s.batch.max_batch = 1;
  for (std::size_t i = 0; i < requests; ++i) {
    serve::Request r;
    r.id = i;
    r.arrival_s = static_cast<double>(i) * 0.1;  // far apart: no queueing
    s.trace.push_back(r);
  }
  return s;
}

TEST(CostAwareRouting, PicksCheaperSlotWhenBothMakeSlo) {
  serve::WorkloadCatalog catalog;
  catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128));
  const double lat_tron = serve::EstimateCache("tron", catalog).estimate(0, 1).latency_s;
  const double lat_v100 = serve::EstimateCache("v100", catalog).estimate(0, 1).latency_s;
  ASSERT_LT(lat_tron, lat_v100);  // photonic is the fast slot

  // Generous SLO: both slots are feasible, so routing must follow dollars.
  serve::Scenario s = hybrid_trace_scenario(/*slo_s=*/1e3 * lat_v100, /*requests=*/8);
  // Make the photonic slot overwhelmingly expensive per slot-hour so the
  // electronic slot wins on cost despite its energy.
  s.fleet.cost.slot_hour_overrides = {{"tron", 1e6}, {"v100", 1e-9}};
  const serve::FleetMetrics cheap = simulate(s);
  EXPECT_EQ(cheap.completed, 8u);
  // Every request served at v100 latency (no queueing by construction).
  EXPECT_NEAR(cheap.mean_latency_s, lat_v100, 1e-12 + 1e-9 * lat_v100);

  // Invert the rates: the photonic slot is now also the cheap one.
  serve::Scenario s2 = hybrid_trace_scenario(/*slo_s=*/1e3 * lat_v100, /*requests=*/8);
  s2.fleet.cost.slot_hour_overrides = {{"tron", 1e-9}, {"v100", 1e6}};
  const serve::FleetMetrics fast = simulate(s2);
  EXPECT_NEAR(fast.mean_latency_s, lat_tron, 1e-12 + 1e-9 * lat_tron);
}

TEST(CostAwareRouting, FallsBackPastSlotsThatMissSlo) {
  serve::WorkloadCatalog catalog;
  catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128));
  const double lat_tron = serve::EstimateCache("tron", catalog).estimate(0, 1).latency_s;
  const double lat_v100 = serve::EstimateCache("v100", catalog).estimate(0, 1).latency_s;

  // SLO between the two service times: only the photonic slot is feasible,
  // so it must win even though the electronic slot is priced far cheaper.
  serve::Scenario s = hybrid_trace_scenario(/*slo_s=*/0.5 * (lat_tron + lat_v100),
                                            /*requests=*/8);
  s.fleet.cost.slot_hour_overrides = {{"tron", 1e6}, {"v100", 1e-9}};
  const serve::FleetMetrics m = simulate(s);
  EXPECT_EQ(m.completed, 8u);
  EXPECT_NEAR(m.mean_latency_s, lat_tron, 1e-12 + 1e-9 * lat_tron);
  EXPECT_DOUBLE_EQ(m.slo_attainment, 1.0);
}

TEST(CostMetrics, FleetCostCoversTenantAttribution) {
  serve::Scenario s = hybrid_trace_scenario(/*slo_s=*/1.0, /*requests=*/16);
  const serve::FleetMetrics m = simulate(s);
  EXPECT_GT(m.fleet_cost_usd, 0.0);
  EXPECT_DOUBLE_EQ(m.cost_per_request_usd,
                   m.fleet_cost_usd / static_cast<double>(m.completed));
  ASSERT_EQ(m.tenants.size(), 1u);
  EXPECT_GT(m.tenants[0].cost_usd, 0.0);
  // Attribution covers only the served share; idle slot-time and static
  // energy land on the fleet total.
  EXPECT_LT(m.tenants[0].cost_usd, m.fleet_cost_usd);
}

TEST(CostMetrics, SlotHourRatePrefersOverrides) {
  serve::CostModel cost;
  cost.usd_per_watt_hour = 0.01;
  cost.slot_hour_overrides = {{"v100", 7.5}};
  EXPECT_DOUBLE_EQ(cost.slot_hour_rate("v100", 300.0), 7.5);
  EXPECT_DOUBLE_EQ(cost.slot_hour_rate("tron", 300.0), 3.0);  // power-derived
}

// ---------------------------------------------------------------------------
// Merge and shard parity of the cost fields (satellite: FleetMetrics::merge)
// ---------------------------------------------------------------------------

serve::Scenario open_hybrid_scenario(std::size_t requests, std::uint64_t seed) {
  serve::Scenario s;
  s.catalog = serve::WorkloadCatalog::tron_default();
  s.fleet = serve::FleetConfig::cycled({"tron", "v100"}, 4,
                                       serve::RoutingPolicy::kCostAware);
  s.batch.max_batch = 8;
  s.traffic.open.offered_qps = 30000.0;
  s.traffic.open.request_count = requests;
  s.traffic.open.seed = seed;
  return s;
}

TEST(CostMetrics, MergeAddsDollarsExactlyAndRecomputesPerRequest) {
  const serve::FleetMetrics a = simulate(open_hybrid_scenario(6000, 11));
  const serve::FleetMetrics b = simulate(open_hybrid_scenario(4000, 77));
  ASSERT_GT(a.fleet_cost_usd, 0.0);
  ASSERT_GT(b.fleet_cost_usd, 0.0);
  serve::FleetMetrics merged = a;
  merged.merge(b);
  // Disjoint slot-time and energy: dollars add bit-exactly.
  EXPECT_EQ(merged.fleet_cost_usd, a.fleet_cost_usd + b.fleet_cost_usd);
  EXPECT_DOUBLE_EQ(merged.cost_per_request_usd,
                   merged.fleet_cost_usd /
                       static_cast<double>(a.completed + b.completed));
  ASSERT_EQ(merged.tenants.size(), a.tenants.size());
  for (std::size_t w = 0; w < merged.tenants.size(); ++w) {
    EXPECT_EQ(merged.tenants[w].cost_usd,
              a.tenants[w].cost_usd + b.tenants[w].cost_usd);
  }
}

TEST(CostMetrics, CellsOneShardFoldIsBitIdenticalIncludingCost) {
  const serve::Scenario s = open_hybrid_scenario(10000, 29);
  const serve::FleetMetrics serial = simulate(s);
  const serve::FleetMetrics sharded = simulate_sharded(s, 1);
  EXPECT_EQ(serial.completed, sharded.completed);
  EXPECT_EQ(serial.fleet_cost_usd, sharded.fleet_cost_usd);
  EXPECT_EQ(serial.cost_per_request_usd, sharded.cost_per_request_usd);
  EXPECT_EQ(serial.fleet_energy_j, sharded.fleet_energy_j);
  EXPECT_EQ(serial.p99_latency_s, sharded.p99_latency_s);
  ASSERT_EQ(serial.tenants.size(), sharded.tenants.size());
  for (std::size_t w = 0; w < serial.tenants.size(); ++w) {
    EXPECT_EQ(serial.tenants[w].cost_usd, sharded.tenants[w].cost_usd);
  }
}

// ---------------------------------------------------------------------------
// Campaign fleet-template axis
// ---------------------------------------------------------------------------

serve::CampaignConfig small_campaign() {
  serve::CampaignConfig config;
  config.qps = {20000.0, 60000.0};
  config.schedulers = {serve::SchedulerKind::kDynamicBatch};
  config.fleet_sizes = {2};
  config.max_batches = {4};
  config.requests_per_point = 2000;
  config.seed = 5;
  return config;
}

TEST(CampaignTemplates, SingleTemplateAxisIsBitIdenticalToPreAxisCampaign) {
  const serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  serve::CampaignConfig pre = small_campaign();  // fleet_templates empty
  serve::CampaignConfig axis = small_campaign();
  axis.fleet_templates = {{"tron"}};
  const auto a = run_campaign(pre, catalog);
  const auto b = run_campaign(axis, catalog);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fleet_template, b[i].fleet_template);
    EXPECT_EQ(a[i].metrics.completed, b[i].metrics.completed);
    EXPECT_EQ(a[i].metrics.p99_latency_s, b[i].metrics.p99_latency_s);
    EXPECT_EQ(a[i].metrics.fleet_energy_j, b[i].metrics.fleet_energy_j);
    EXPECT_EQ(a[i].metrics.fleet_cost_usd, b[i].metrics.fleet_cost_usd);
  }
}

TEST(CampaignTemplates, TemplateAxisIsOutermostAndPreservesPerPointSeeds) {
  const serve::WorkloadCatalog catalog = serve::WorkloadCatalog::tron_default();
  serve::CampaignConfig single = small_campaign();
  serve::CampaignConfig hybrid = small_campaign();
  hybrid.fleet_templates = {{"tron"}, {"tron", "v100"}};
  const auto base = run_campaign(single, catalog);
  const auto grid = run_campaign(hybrid, catalog);
  ASSERT_EQ(grid.size(), 2 * base.size());
  // First half: the photonic template, bit-identical to the single-template
  // campaign (the axis is outermost, so inner grid indices — and with them
  // per-point trace seeds — are unchanged).
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(grid[i].fleet_template, std::vector<std::string>{"tron"});
    EXPECT_EQ(grid[i].qps, base[i].qps);
    EXPECT_EQ(grid[i].metrics.completed, base[i].metrics.completed);
    EXPECT_EQ(grid[i].metrics.p99_latency_s, base[i].metrics.p99_latency_s);
    EXPECT_EQ(grid[i].metrics.fleet_cost_usd, base[i].metrics.fleet_cost_usd);
  }
  // Second half: the hybrid template, with cost metrics populated.
  for (std::size_t i = base.size(); i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].fleet_template, (std::vector<std::string>{"tron", "v100"}));
    EXPECT_GT(grid[i].metrics.fleet_cost_usd, 0.0);
  }
  // The whole grid is deterministic: a re-run is bit-identical.
  const auto again = run_campaign(hybrid, catalog);
  ASSERT_EQ(again.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].metrics.p99_latency_s, again[i].metrics.p99_latency_s);
    EXPECT_EQ(grid[i].metrics.fleet_cost_usd, again[i].metrics.fleet_cost_usd);
  }
}

TEST(CampaignTemplates, EmptyTemplateEntryIsRejected) {
  serve::CampaignConfig config = small_campaign();
  config.fleet_templates = {{"tron"}, {}};
  EXPECT_THROW(validate_campaign(config), InvalidArgument);
}

}  // namespace
}  // namespace lumos
