// Integration tests: the figure runners regenerate the paper's evaluation
// (Figs. 8-11) and the headline claims hold in shape — TRON >= 14x
// throughput / >= 8x EPB, GHOST >= 10.2x throughput / >= 3.8x EPB, and the
// combined minimum of the abstract (>= 10.2x / >= 3.8x).
#include <gtest/gtest.h>

#include <sstream>

#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace lumos::sim {
namespace {

class FigureFixture : public ::testing::Test {
 protected:
  static const FigureData& fig8() {
    static const FigureData f = run_fig8_epb_llm(arch::TronAdapter(tron::default_tron_config()));
    return f;
  }
  static const FigureData& fig9() {
    static const FigureData f = run_fig9_gops_llm(arch::TronAdapter(tron::default_tron_config()));
    return f;
  }
  static const FigureData& fig10() {
    static const FigureData f = run_fig10_epb_gnn(arch::GhostAdapter(ghost::default_ghost_config()));
    return f;
  }
  static const FigureData& fig11() {
    static const FigureData f = run_fig11_gops_gnn(arch::GhostAdapter(ghost::default_ghost_config()));
    return f;
  }
};

TEST_F(FigureFixture, Fig8GridIsComplete) {
  const FigureData& f = fig8();
  EXPECT_EQ(f.workloads.size(), 4u);   // BERT-base, BERT-large, GPT-2, ViT
  EXPECT_EQ(f.platforms.size(), 8u);   // TRON + 7 baselines
  ASSERT_EQ(f.reports.size(), f.workloads.size());
  for (const auto& row : f.reports) {
    ASSERT_EQ(row.size(), f.platforms.size());
    for (const auto& r : row) EXPECT_GT(r.latency_s, 0.0);
  }
  EXPECT_EQ(f.platforms.front(), "TRON");
}

TEST_F(FigureFixture, Fig10GridIsComplete) {
  const FigureData& f = fig10();
  EXPECT_EQ(f.workloads.size(), 12u);  // 4 models x 3 datasets
  EXPECT_EQ(f.platforms.size(), 10u);  // GHOST + 9 baselines
  EXPECT_EQ(f.platforms.front(), "GHOST");
}

TEST_F(FigureFixture, TronBeatsEveryBaselineEverywhere) {
  for (const FigureData* f : {&fig8(), &fig9()}) {
    for (std::size_t w = 0; w < f->workloads.size(); ++w) {
      for (std::size_t p = 1; p < f->platforms.size(); ++p) {
        EXPECT_GT(f->improvement(w, p), 1.0)
            << f->title << " " << f->workloads[w] << " vs " << f->platforms[p];
      }
    }
  }
}

TEST_F(FigureFixture, GhostBeatsEveryBaselineEverywhere) {
  for (const FigureData* f : {&fig10(), &fig11()}) {
    for (std::size_t w = 0; w < f->workloads.size(); ++w) {
      for (std::size_t p = 1; p < f->platforms.size(); ++p) {
        EXPECT_GT(f->improvement(w, p), 1.0)
            << f->title << " " << f->workloads[w] << " vs " << f->platforms[p];
      }
    }
  }
}

TEST_F(FigureFixture, PaperHeadlineTronThroughput) {
  // Paper Section VI: "at least 14x better throughput".
  EXPECT_GE(fig9().min_improvement(), 14.0);
}

TEST_F(FigureFixture, PaperHeadlineTronEnergy) {
  // Paper Section VI: "8x better energy efficiency".
  EXPECT_GE(fig8().min_improvement(), 8.0);
}

TEST_F(FigureFixture, PaperHeadlineGhostThroughput) {
  // Paper abstract: "a minimum of 10.2x improvement in throughput".
  EXPECT_GE(fig11().min_improvement(), 10.2);
}

TEST_F(FigureFixture, PaperHeadlineGhostEnergy) {
  // Paper abstract: "3.8x greater energy efficiency".
  EXPECT_GE(fig10().min_improvement(), 3.8);
}

TEST_F(FigureFixture, CombinedAbstractClaim) {
  // "both hardware accelerators achieve at least 10.2x throughput improvement
  // and 3.8x better energy efficiency".
  const HeadlineClaims h =
      run_headline_claims(arch::TronAdapter(tron::default_tron_config()),
                          arch::GhostAdapter(ghost::default_ghost_config()));
  EXPECT_GE(std::min(h.tron_min_throughput_gain, h.ghost_min_throughput_gain), 10.2);
  EXPECT_GE(std::min(h.tron_min_epb_gain, h.ghost_min_epb_gain), 3.8);
}

TEST_F(FigureFixture, MeanImprovementExceedsMin) {
  for (const FigureData* f : {&fig8(), &fig9(), &fig10(), &fig11()}) {
    EXPECT_GE(f->mean_improvement(), f->min_improvement());
  }
}

TEST_F(FigureFixture, MetricsExtractCorrectField) {
  const FigureData& e = fig8();
  const FigureData& t = fig9();
  EXPECT_NEAR(e.value(0, 0), e.reports[0][0].energy_per_bit_j(), 1e-20);
  EXPECT_NEAR(t.value(0, 0), t.reports[0][0].ops_per_second(), 1e-3);
}

TEST_F(FigureFixture, TablesRenderEveryCell) {
  for (const FigureData* f : {&fig8(), &fig9(), &fig10(), &fig11()}) {
    const Table table = f->to_table();
    EXPECT_EQ(table.row_count(), f->workloads.size() + 1);
    std::ostringstream os;
    table.print(os);
    for (const std::string& p : f->platforms) {
      EXPECT_NE(os.str().find(p), std::string::npos) << p;
    }
  }
}

TEST_F(FigureFixture, CpuIsTheWorstLlmPlatform) {
  // Shape check inherited from the paper's figures: the CPU trails every
  // dedicated accelerator on throughput.
  const FigureData& f = fig9();
  std::size_t cpu = 0;
  for (std::size_t p = 0; p < f.platforms.size(); ++p) {
    if (f.platforms[p] == "Xeon CPU") cpu = p;
  }
  ASSERT_GT(cpu, 0u);
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      if (p == cpu) continue;
      EXPECT_GE(f.value(w, p), f.value(w, cpu)) << f.workloads[w] << " " << f.platforms[p];
    }
  }
}

TEST_F(FigureFixture, TransPimIsBestElectronicLlmBaseline) {
  // Paper shape: the PIM design leads the electronic pack on throughput.
  const FigureData& f = fig9();
  std::size_t pim = 0;
  for (std::size_t p = 0; p < f.platforms.size(); ++p) {
    if (f.platforms[p] == "TransPIM") pim = p;
  }
  ASSERT_GT(pim, 0u);
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      EXPECT_LE(f.value(w, p), f.value(w, pim) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace lumos::sim
