// Tests for the robustness subsystem: slot failure injection (seeded per-slot
// fault process, mid-batch aborts and requeues), request timeouts and retries
// with backoff, admission control (queue cap / tier shed / SLO-aware), the
// no-fault parity contract (disabled knobs are bit-identical to the baseline
// simulator), overload direction (tier-aware shedding keeps tier-0 goodput
// while the no-admission baseline collapses), and the campaign fault /
// admission grid axes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/campaign.hpp"
#include "serve/faults.hpp"
#include "serve/names.hpp"
#include "serve/simulator.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Scenario over an explicit pre-materialised trace.
FleetMetrics simulate_trace(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                            std::vector<Request> trace, SchedulerKind scheduler,
                            const BatchPolicy& policy, const SimConfig& sim = {}) {
  Scenario scenario;
  scenario.fleet = fleet;
  scenario.catalog = catalog;
  scenario.scheduler = scheduler;
  scenario.batch = policy;
  scenario.sim = sim;
  scenario.trace = std::move(trace);
  return simulate(scenario);
}

std::vector<Request> tron_trace(const WorkloadCatalog& catalog, double qps_fraction,
                                std::size_t requests, std::uint64_t seed) {
  TraceConfig cfg;
  cfg.offered_qps = qps_fraction * fleet_capacity_qps(catalog, "tron", 2, 8);
  cfg.request_count = requests;
  cfg.seed = seed;
  return generate_trace(catalog, cfg);
}

void expect_bit_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_EQ(a.goodput_qps, b.goodput_qps);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  // Robustness counters are part of the bit-reproducibility contract.
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.timed_out_requests, b.timed_out_requests);
  EXPECT_EQ(a.attempt_timeouts, b.attempt_timeouts);
  EXPECT_EQ(a.retried_attempts, b.retried_attempts);
  EXPECT_EQ(a.failed_batches, b.failed_batches);
  EXPECT_EQ(a.requeued_requests, b.requeued_requests);
  EXPECT_EQ(a.slot_failures, b.slot_failures);
  EXPECT_EQ(a.slot_recoveries, b.slot_recoveries);
  EXPECT_EQ(a.drop_rate, b.drop_rate);
  EXPECT_EQ(a.fleet_availability, b.fleet_availability);
  EXPECT_EQ(a.observed_mttr_s, b.observed_mttr_s);
}

void expect_invalid(const std::function<void()>& fn, const char* field) {
  try {
    fn();
    FAIL() << "expected InvalidArgument naming " << field;
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(FaultValidation, DisabledConfigIsAlwaysValid) {
  FaultConfig off;
  EXPECT_FALSE(off.enabled());
  EXPECT_NO_THROW(validate_faults(off));
  off.mttr_s = -1.0;  // mttr is only checked when injection is enabled
  EXPECT_NO_THROW(validate_faults(off));
}

TEST(FaultValidation, NamesBadFields) {
  FaultConfig cfg;
  cfg.mtbf_s = std::numeric_limits<double>::infinity();
  expect_invalid([&] { validate_faults(cfg); }, "mtbf_s");
  cfg.mtbf_s = 1e-3;
  cfg.mttr_s = 0.0;
  expect_invalid([&] { validate_faults(cfg); }, "mttr_s");
  cfg.mttr_s = -1e-3;
  expect_invalid([&] { validate_faults(cfg); }, "mttr_s");
}

TEST(RetryValidation, NamesBadFields) {
  RetryPolicy policy;
  EXPECT_FALSE(policy.enabled());  // max_attempts == 1: no retries
  EXPECT_NO_THROW(validate_retry(policy));
  policy.max_attempts = 0;
  expect_invalid([&] { validate_retry(policy); }, "max_attempts");
  policy = {};
  policy.base_backoff_s = -1e-3;
  expect_invalid([&] { validate_retry(policy); }, "base_backoff_s");
  policy = {};
  policy.multiplier = 0.5;
  expect_invalid([&] { validate_retry(policy); }, "multiplier");
  policy = {};
  policy.jitter = 1.0;
  expect_invalid([&] { validate_retry(policy); }, "jitter");
  policy.jitter = -0.1;
  expect_invalid([&] { validate_retry(policy); }, "jitter");
}

TEST(AdmissionValidation, KnobsCheckedPerPolicy) {
  AdmissionConfig cfg;  // kNone is always valid, knobs ignored
  cfg.queue_cap = 0;
  EXPECT_NO_THROW(validate_admission(cfg));
  EXPECT_EQ(make_admission(AdmissionConfig{}), nullptr);

  cfg = {};
  cfg.policy = AdmissionPolicy::kQueueCap;
  cfg.queue_cap = 0;
  expect_invalid([&] { validate_admission(cfg); }, "queue_cap");
  cfg = {};
  cfg.policy = AdmissionPolicy::kTierShed;
  cfg.tier_shed_factor = 0.0;
  expect_invalid([&] { validate_admission(cfg); }, "tier_shed_factor");
  cfg.tier_shed_factor = 1.5;
  expect_invalid([&] { validate_admission(cfg); }, "tier_shed_factor");
  cfg = {};
  cfg.policy = AdmissionPolicy::kSloAware;
  cfg.slo_margin = 0.0;
  expect_invalid([&] { validate_admission(cfg); }, "slo_margin");
}

// ---------------------------------------------------------------------------
// Enum names (CLI discovery + JSON writers)
// ---------------------------------------------------------------------------

TEST(RobustnessNames, AdmissionRoundTrips) {
  for (const AdmissionPolicy p :
       {AdmissionPolicy::kNone, AdmissionPolicy::kQueueCap, AdmissionPolicy::kTierShed,
        AdmissionPolicy::kSloAware}) {
    EXPECT_EQ(admission_from_name(admission_name(p)), p);
  }
  const std::vector<std::string> names = admission_names();
  EXPECT_EQ(names.size(), 4u);
  EXPECT_NE(std::find(names.begin(), names.end(), "tier-shed"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "slo-aware"), names.end());
  EXPECT_THROW((void)admission_from_name("bogus"), InvalidArgument);
}

TEST(RobustnessNames, CompletionStatusRoundTrips) {
  for (const CompletionStatus s :
       {CompletionStatus::kOk, CompletionStatus::kShed, CompletionStatus::kTimeout}) {
    EXPECT_EQ(completion_status_from_name(completion_status_name(s)), s);
  }
  EXPECT_EQ(completion_status_names().size(), 3u);
  EXPECT_STREQ(completion_status_name(CompletionStatus::kTimeout), "timeout");
  EXPECT_THROW((void)completion_status_from_name("dropped"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------------

TEST(RetryBackoff, PureFunctionOfPolicyIdAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  for (const std::uint64_t id : {0ull, 7ull, 123456789ull}) {
    for (const std::size_t attempt : {1u, 2u, 3u}) {
      EXPECT_EQ(retry_backoff_s(policy, id, attempt), retry_backoff_s(policy, id, attempt));
    }
  }
}

TEST(RetryBackoff, ZeroJitterIsExactlyGeometric) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_s = 2e-3;
  policy.multiplier = 3.0;
  policy.jitter = 0.0;
  EXPECT_EQ(retry_backoff_s(policy, 42, 1), policy.base_backoff_s);
  EXPECT_EQ(retry_backoff_s(policy, 42, 2), policy.base_backoff_s * policy.multiplier);
  EXPECT_EQ(retry_backoff_s(policy, 42, 3),
            policy.base_backoff_s * policy.multiplier * policy.multiplier);
}

TEST(RetryBackoff, JitterStaysInsideTheBandAndVariesById) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.jitter = 0.25;
  bool varied = false;
  double first = -1.0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const double d = retry_backoff_s(policy, id, 1);
    EXPECT_GE(d, policy.base_backoff_s * (1.0 - policy.jitter));
    EXPECT_LE(d, policy.base_backoff_s * (1.0 + policy.jitter));
    if (first < 0.0) first = d;
    if (d != first) varied = true;
  }
  EXPECT_TRUE(varied);  // the jitter stream actually keys on the request id
}

// ---------------------------------------------------------------------------
// Slot fault process
// ---------------------------------------------------------------------------

FaultConfig fast_faults() {
  FaultConfig cfg;
  cfg.mtbf_s = 1e-3;
  cfg.mttr_s = 2e-4;
  cfg.seed = 7;
  return cfg;
}

TEST(FaultProcess, ReplaysBitForBit) {
  SlotFaultProcess a(fast_faults());
  SlotFaultProcess b(fast_faults());
  for (int i = 0; i < 3; ++i) {
    a.add_slot(0.0);
    b.add_slot(0.0);
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a.next_event_s(), b.next_event_s());
    ASSERT_EQ(a.next_event_slot(), b.next_event_slot());
    EXPECT_EQ(a.advance(a.next_event_slot()), b.advance(b.next_event_slot()));
  }
}

TEST(FaultProcess, SlotStreamsAreIndependentOfFleetSize) {
  // Slot 0's transition schedule must not depend on how many other slots are
  // tracked: drain slot 0's first transitions from a 1-slot and a 4-slot
  // process and compare.
  const auto slot0_transitions = [](std::size_t fleet) {
    SlotFaultProcess p(fast_faults());
    for (std::size_t i = 0; i < fleet; ++i) p.add_slot(0.0);
    std::vector<double> times;
    while (times.size() < 10) {
      const std::size_t slot = p.next_event_slot();
      const double t = p.next_event_s();
      p.advance(slot);
      if (slot == 0) times.push_back(t);
    }
    return times;
  };
  EXPECT_EQ(slot0_transitions(1), slot0_transitions(4));
}

TEST(FaultProcess, RemovedSlotsStopTransitioning) {
  SlotFaultProcess p(fast_faults());
  p.add_slot(0.0);
  p.add_slot(0.0);
  p.remove_slot(0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.next_event_slot(), 1u);
    p.advance(1);
  }
  p.remove_slot(1);
  EXPECT_EQ(p.next_event_s(), std::numeric_limits<double>::infinity());
}

TEST(FaultProcess, AlternatesUpAndDownPhases) {
  SlotFaultProcess p(fast_faults());
  p.add_slot(0.0);
  EXPECT_TRUE(p.up(0));
  EXPECT_FALSE(p.advance(0));  // first transition is a failure
  EXPECT_FALSE(p.up(0));
  EXPECT_TRUE(p.advance(0));  // then a recovery
  EXPECT_TRUE(p.up(0));
}

// ---------------------------------------------------------------------------
// No-fault parity: disabled knobs are the baseline simulator, bit for bit
// ---------------------------------------------------------------------------

TEST(FaultParity, DisabledKnobsBitIdenticalToDefault) {
  // Explicitly-disabled robustness knobs with aggressive sub-knob values must
  // not perturb a single bit: the disabled paths may not even look at them.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 0.9, 8000, 121);
  BatchPolicy policy;
  policy.max_batch = 8;

  SimConfig configured;
  configured.faults.mtbf_s = 0.0;  // disabled
  configured.faults.mttr_s = 1e-9;
  configured.retry.max_attempts = 1;  // disabled
  configured.retry.base_backoff_s = 1e-9;
  configured.admission.policy = AdmissionPolicy::kNone;  // disabled
  configured.admission.queue_cap = 1;

  const FleetMetrics base =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  const FleetMetrics off =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, configured);
  expect_bit_identical(base, off);
  EXPECT_EQ(off.shed_requests, 0u);
  EXPECT_EQ(off.timed_out_requests, 0u);
  EXPECT_EQ(off.retried_attempts, 0u);
  EXPECT_EQ(off.slot_failures, 0u);
  EXPECT_EQ(off.drop_rate, 0.0);
  EXPECT_EQ(off.fleet_availability, 1.0);
  EXPECT_TRUE(off.slot_availability.empty());
}

TEST(FaultParity, GenerousTimeoutBitIdenticalToNoTimeout) {
  // A timeout no request can ever hit exercises the timeout bookkeeping
  // without changing a single event: bit-identical to the untimed catalog.
  const WorkloadCatalog untimed = WorkloadCatalog::tron_default();
  WorkloadCatalog timed = WorkloadCatalog::tron_default();
  timed.apply_timeout(1e9);
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(untimed, 1.2, 8000, 122);
  BatchPolicy policy;
  policy.max_batch = 8;
  const FleetMetrics a =
      simulate_trace(fleet, untimed, trace, SchedulerKind::kDynamicBatch, policy);
  const FleetMetrics b =
      simulate_trace(fleet, timed, trace, SchedulerKind::kDynamicBatch, policy);
  expect_bit_identical(a, b);
  EXPECT_EQ(b.attempt_timeouts, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection end to end
// ---------------------------------------------------------------------------

SimConfig faulty_sim() {
  SimConfig sim;
  sim.faults.mtbf_s = 20e-3;
  sim.faults.mttr_s = 2e-3;
  sim.faults.seed = 5;
  return sim;
}

TEST(FaultServing, AbortedBatchesRequeueWithoutLoss) {
  // Faults only (no timeouts, no admission): every issued request still
  // completes exactly once — aborted batches requeue, nothing is dropped or
  // double-counted.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 0.8, 12000, 123);
  BatchPolicy policy;
  policy.max_batch = 8;
  const FleetMetrics m = simulate_trace(fleet, catalog, trace,
                                        SchedulerKind::kDynamicBatch, policy, faulty_sim());
  EXPECT_EQ(m.completed, trace.size());
  EXPECT_EQ(m.shed_requests, 0u);
  EXPECT_EQ(m.timed_out_requests, 0u);
  EXPECT_GT(m.slot_failures, 0u);
  EXPECT_GT(m.failed_batches, 0u);
  EXPECT_GT(m.requeued_requests, 0u);
  EXPECT_GE(m.slot_failures, m.failed_batches);  // idle slots fail too
  EXPECT_LT(m.fleet_availability, 1.0);
  EXPECT_GT(m.fleet_availability, 0.5);
  ASSERT_EQ(m.slot_availability.size(), 2u);
  for (const SlotAvailability& s : m.slot_availability) {
    EXPECT_EQ(s.spec, "tron");
    EXPECT_GT(s.failures, 0u);
    EXPECT_LT(s.uptime_fraction, 1.0);
    EXPECT_GT(s.uptime_fraction, 0.0);
    if (s.repairs > 0) {
      EXPECT_GT(s.observed_mttr_s, 0.0);
    }
  }
}

TEST(FaultServing, FaultOverloadRunsAreBitReproducible) {
  // Everything on at once — faults, timeouts, retries, tier shedding — twice,
  // bit-identical (with the CI LUMOS_THREADS matrix this pins thread-count
  // independence too).
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_default_tiers();
  catalog.apply_timeout(0.2);
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 1.5, 10000, 124);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim = faulty_sim();
  sim.retry.max_attempts = 3;
  sim.admission.policy = AdmissionPolicy::kTierShed;
  sim.admission.queue_cap = 128;
  const FleetMetrics a =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  const FleetMetrics b =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  expect_bit_identical(a, b);
  // Conservation: one terminal status per issued request.
  EXPECT_EQ(a.completed + a.shed_requests + a.timed_out_requests, trace.size());
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].shed, b.tenants[i].shed);
    EXPECT_EQ(a.tenants[i].timed_out, b.tenants[i].timed_out);
    EXPECT_EQ(a.tenants[i].drop_rate, b.tenants[i].drop_rate);
  }
}

TEST(FaultServing, DrainBeforeRetireSurvivesMidBatchFailure) {
  // Autoscaler shrink (drain-before-retire) interleaved with slot failures:
  // requests from aborted batches requeue exactly once and everything still
  // completes; the whole run replays bit-for-bit.
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const double capacity = fleet_capacity_qps(catalog, "tron", 2, 8);
  TraceConfig burst_cfg;
  burst_cfg.offered_qps = 3.0 * capacity;
  burst_cfg.request_count = 6000;
  burst_cfg.seed = 125;
  std::vector<Request> trace = generate_trace(catalog, burst_cfg);
  TraceConfig tail_cfg;
  tail_cfg.offered_qps = 0.05 * capacity;
  tail_cfg.request_count = 4000;
  tail_cfg.seed = 126;
  const double burst_end = trace.back().arrival_s;
  for (const Request& r : generate_trace(catalog, tail_cfg)) {
    trace.push_back({r.id + burst_cfg.request_count, burst_end + 1e-4 + r.arrival_s,
                     r.workload});
  }

  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim = faulty_sim();
  sim.autoscaler.policy = AutoscalerPolicy::kQueueDepth;
  sim.autoscaler.max_slots = 8;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_EQ(m.completed, trace.size());  // no loss, no duplication
  EXPECT_GT(m.autoscale_grows, 0u);
  EXPECT_GT(m.autoscale_shrinks, 0u);
  EXPECT_GT(m.slot_failures, 0u);
  EXPECT_GT(m.requeued_requests, 0u);
  const FleetMetrics again =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  expect_bit_identical(m, again);
}

// ---------------------------------------------------------------------------
// Timeouts and retries end to end
// ---------------------------------------------------------------------------

TEST(TimeoutServing, TimeoutsAreTerminalWithoutRetries) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_timeout(5e-4);  // tight: overload queues blow through it
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 2.0, 10000, 127);
  BatchPolicy policy;
  policy.max_batch = 8;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  EXPECT_GT(m.timed_out_requests, 0u);
  EXPECT_EQ(m.retried_attempts, 0u);  // retries disabled: every timeout is terminal
  EXPECT_EQ(m.attempt_timeouts, m.timed_out_requests);
  EXPECT_EQ(m.completed + m.timed_out_requests, trace.size());
  EXPECT_EQ(m.drop_rate, static_cast<double>(m.timed_out_requests) /
                             static_cast<double>(trace.size()));
  std::size_t tenant_timeouts = 0;
  for (const TenantMetrics& t : m.tenants) tenant_timeouts += t.timed_out;
  EXPECT_EQ(tenant_timeouts, m.timed_out_requests);
}

TEST(TimeoutServing, RetriesReissueTimedOutAttempts) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_timeout(5e-4);
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 2.0, 10000, 127);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.retry.max_attempts = 3;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_GT(m.retried_attempts, 0u);
  // Every attempt past its deadline either re-issues or goes terminal.
  EXPECT_EQ(m.attempt_timeouts, m.retried_attempts + m.timed_out_requests);
  EXPECT_EQ(m.completed + m.timed_out_requests, trace.size());
}

// ---------------------------------------------------------------------------
// Admission control end to end
// ---------------------------------------------------------------------------

TEST(AdmissionServing, QueueCapBoundsTheQueue) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 3.0, 10000, 128);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.admission.policy = AdmissionPolicy::kQueueCap;
  sim.admission.queue_cap = 64;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_GT(m.shed_requests, 0u);
  EXPECT_LE(m.peak_queue_depth, 64u);
  EXPECT_EQ(m.completed + m.shed_requests, trace.size());
  std::size_t tenant_shed = 0;
  for (const TenantMetrics& t : m.tenants) tenant_shed += t.shed;
  EXPECT_EQ(tenant_shed, m.shed_requests);
}

TEST(AdmissionServing, SloAwareShedsWhenPredictedLatencyBlowsTheSlo) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 2);
  const std::vector<Request> trace = tron_trace(catalog, 3.0, 10000, 129);
  BatchPolicy policy;
  policy.max_batch = 8;
  SimConfig sim;
  sim.admission.policy = AdmissionPolicy::kSloAware;
  const FleetMetrics m =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy, sim);
  EXPECT_GT(m.shed_requests, 0u);
  EXPECT_EQ(m.completed + m.shed_requests, trace.size());
  // Shedding the predicted-to-miss excess leaves the admitted load far better
  // off than the admit-everything baseline at the same 3x overload.
  const FleetMetrics baseline =
      simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  EXPECT_GT(m.slo_attainment, 2.0 * baseline.slo_attainment);
  EXPECT_GT(m.goodput_qps, baseline.goodput_qps);
}

TEST(AdmissionServing, TierShedProtectsTierZeroWhileBaselineCollapses) {
  // The headline overload direction (mirrors the bench's overload_faults
  // section): at 2x capacity with slot faults, tier-aware admission holds the
  // premium tenant's SLO attainment >= 0.9 while the admit-everything
  // baseline collapses below 0.1 overall.
  WorkloadCatalog catalog;
  catalog.add_transformer("vit-premium", sim::transformer_by_name("vit"), 0.25);
  catalog.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128), 5.0);
  catalog.add_transformer("gpt2/256", sim::transformer_by_name("gpt2", 256), 4.5);
  catalog.set_priority(1, 1);
  catalog.set_priority(2, 1);
  const FleetConfig fleet = FleetConfig::cycled({"tron"}, 4);
  const double capacity = fleet_capacity_qps(catalog, fleet, 8);
  const EstimateCache cache("tron", catalog);
  double slowest = 0.0;
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    slowest = std::max(slowest, cache.estimate(w, 1).latency_s);
  }
  const double slo_s = 10.0 * slowest;
  catalog.set_slo(0, 3.0 * slo_s);
  catalog.set_timeout(2, 15.0 * slo_s);

  const auto run = [&](AdmissionPolicy admission) {
    Scenario scenario;
    scenario.fleet = fleet;
    scenario.catalog = catalog;
    scenario.scheduler = SchedulerKind::kDynamicBatch;
    scenario.batch.max_batch = 8;
    scenario.sim.faults.mtbf_s = 50e-3;
    scenario.sim.faults.mttr_s = 5e-3;
    scenario.sim.retry.max_attempts = 3;
    scenario.sim.admission.policy = admission;
    scenario.traffic.open.offered_qps = 2.0 * capacity;
    scenario.traffic.open.request_count = 20000;
    scenario.traffic.open.seed = 29;
    return simulate(scenario);
  };

  const FleetMetrics none = run(AdmissionPolicy::kNone);
  const FleetMetrics shed = run(AdmissionPolicy::kTierShed);
  EXPECT_LT(none.slo_attainment, 0.1);  // unbounded queues: everyone misses
  ASSERT_EQ(shed.tenants.size(), 3u);
  EXPECT_EQ(shed.tenants[0].priority, 0u);
  EXPECT_GE(shed.tenants[0].slo_attainment, 0.9);  // tier 0 rides above the storm
  EXPECT_GT(shed.tenants[1].shed + shed.tenants[2].shed, 0u);  // tier 1 pays
  EXPECT_GT(shed.goodput_qps, 1.3 * none.goodput_qps);
}

// ---------------------------------------------------------------------------
// Capacity pricing with sampled sequence lengths
// ---------------------------------------------------------------------------

TEST(CapacityPricing, DistributedSeqLensRepriceCapacity) {
  // A lognormal entry centred well above its native length must lower the
  // fleet's unloaded capacity estimate; an all-fixed catalog is untouched.
  const WorkloadCatalog fixed = WorkloadCatalog::tron_default();
  WorkloadCatalog heavy = WorkloadCatalog::tron_default();
  SeqLenConfig seqlen;
  seqlen.dist = SeqLenDist::kLogNormal;
  seqlen.log_mean = std::log(512.0);  // native bert-base length is 128
  seqlen.log_sigma = 0.3;
  heavy.set_seqlen(0, seqlen);

  const double fixed_qps = fleet_capacity_qps(fixed, "tron", 2, 8);
  const double heavy_qps = fleet_capacity_qps(heavy, "tron", 2, 8);
  EXPECT_GT(fixed_qps, 0.0);
  EXPECT_LT(heavy_qps, fixed_qps);
  // The Monte-Carlo pricing draw is fixed-seed: repeat calls are bit-equal.
  EXPECT_EQ(heavy_qps, fleet_capacity_qps(heavy, "tron", 2, 8));
  // And the fleet-shaped overload agrees in direction.
  EXPECT_LT(fleet_capacity_qps(heavy, FleetConfig::homogeneous("tron", 2), 8),
            fleet_capacity_qps(fixed, FleetConfig::homogeneous("tron", 2), 8));
}

// ---------------------------------------------------------------------------
// Campaign grid axes
// ---------------------------------------------------------------------------

TEST(RobustCampaign, AdmissionAndFaultAxesExpandTheGrid) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.8 * fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.admissions = {AdmissionPolicy::kNone, AdmissionPolicy::kQueueCap};
  cfg.fault_mtbfs_s = {0.0, 20e-3};
  cfg.faults.mttr_s = 2e-3;
  cfg.requests_per_point = 3000;
  cfg.seed = 30;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].admission, AdmissionPolicy::kNone);
  EXPECT_EQ(points[0].fault_mtbf_s, 0.0);
  EXPECT_EQ(points[1].admission, AdmissionPolicy::kNone);
  EXPECT_EQ(points[1].fault_mtbf_s, 20e-3);
  EXPECT_EQ(points[3].admission, AdmissionPolicy::kQueueCap);
  EXPECT_EQ(points[3].fault_mtbf_s, 20e-3);
  EXPECT_EQ(points[0].metrics.slot_failures, 0u);
  EXPECT_GT(points[1].metrics.slot_failures, 0u);
}

TEST(RobustCampaign, ParallelFaultSweepMatchesSerialSimulation) {
  // Fault/retry/admission campaigns stay bit-identical to a serial re-run of
  // the same grid point (with the CI LUMOS_THREADS matrix this is the
  // thread-count determinism pin for the robustness path).
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  catalog.apply_default_tiers();
  catalog.apply_timeout(0.1);
  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {1.5 * fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.admissions = {AdmissionPolicy::kTierShed};
  cfg.fault_mtbfs_s = {20e-3};
  cfg.faults.mttr_s = 2e-3;
  cfg.retry.max_attempts = 3;
  cfg.requests_per_point = 5000;
  cfg.seed = 18;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 1u);

  Scenario scenario;
  scenario.fleet = FleetConfig::cycled(cfg.fleet_template, 2);
  scenario.catalog = catalog;
  scenario.scheduler = SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = 8;
  scenario.batch.max_wait_s = cfg.max_wait_s;
  scenario.sim.slo_scale = cfg.slo_scale;
  scenario.sim.admission = cfg.admission;
  scenario.sim.admission.policy = AdmissionPolicy::kTierShed;
  scenario.sim.faults = cfg.faults;
  scenario.sim.faults.mtbf_s = cfg.fault_mtbfs_s[0];
  scenario.sim.retry = cfg.retry;
  scenario.traffic.open.offered_qps = cfg.qps[0];
  scenario.traffic.open.request_count = cfg.requests_per_point;
  scenario.traffic.open.seed = cfg.seed + 0x9E3779B9u * 1;
  const FleetMetrics serial = simulate(scenario);
  expect_bit_identical(points[0].metrics, serial);
}

TEST(RobustCampaign, ValidationNamesRobustFields) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig good;
  good.qps = {1000.0};
  good.requests_per_point = 100;

  CampaignConfig cfg = good;
  cfg.admissions.clear();
  expect_invalid([&] { (void)run_campaign(cfg, catalog); }, "admissions");
  cfg = good;
  cfg.fault_mtbfs_s.clear();
  expect_invalid([&] { (void)run_campaign(cfg, catalog); }, "fault_mtbfs_s");
  cfg = good;
  cfg.fault_mtbfs_s = {-1.0};
  expect_invalid([&] { (void)run_campaign(cfg, catalog); }, "fault_mtbfs_s");
  cfg = good;
  cfg.fault_mtbfs_s = {1e-3};
  cfg.faults.mttr_s = 0.0;
  expect_invalid([&] { (void)run_campaign(cfg, catalog); }, "mttr_s");
  cfg = good;
  cfg.retry.max_attempts = 0;
  expect_invalid([&] { (void)run_campaign(cfg, catalog); }, "max_attempts");
  cfg = good;
  cfg.admissions = {AdmissionPolicy::kQueueCap};
  cfg.admission.queue_cap = 0;
  expect_invalid([&] { (void)run_campaign(cfg, catalog); }, "queue_cap");
}

}  // namespace
}  // namespace lumos::serve
