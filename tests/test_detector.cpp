// Tests for the photodetector / balanced-photodetector receiver models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "photonics/detector.hpp"

namespace lumos::phot {
namespace {

TEST(Photodetector, PhotocurrentLinearInPower) {
  const Photodetector pd({});
  EXPECT_NEAR(pd.photocurrent(2e-3), 2.0 * pd.photocurrent(1e-3), 1e-15);
}

TEST(Photodetector, SnrIncreasesWithPower) {
  const Photodetector pd({});
  double prev = 0.0;
  for (const double p : {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4}) {
    const double snr = pd.snr_linear(p);
    EXPECT_GT(snr, prev);
    prev = snr;
  }
}

TEST(Photodetector, ZeroPowerHasZeroSnr) {
  const Photodetector pd({});
  EXPECT_DOUBLE_EQ(pd.snr_linear(0.0), 0.0);
}

TEST(Photodetector, NoiseGrowsWithPowerButSublinearly) {
  const Photodetector pd({});
  const double n1 = pd.noise_current_sigma(1e-6);
  const double n2 = pd.noise_current_sigma(4e-6);
  EXPECT_GT(n2, n1);
  // Shot-noise regime: sigma ~ sqrt(P), so 4x power < 4x noise.
  EXPECT_LT(n2, 4.0 * n1);
}

TEST(Photodetector, SensitivityMeetsRequiredSnr) {
  const Photodetector pd({});
  for (const int bits : {4, 6, 8}) {
    const double req = Photodetector::required_snr_db_for_bits(bits);
    const double sens = pd.sensitivity_w(req);
    EXPECT_GE(pd.snr_db(sens), req - 1e-6);
    EXPECT_LT(pd.snr_db(sens * 0.5), req);  // tight within a factor of two
  }
}

TEST(Photodetector, SensitivityGrowsWithPrecision) {
  const Photodetector pd({});
  const double s4 = pd.sensitivity_w(Photodetector::required_snr_db_for_bits(4));
  const double s8 = pd.sensitivity_w(Photodetector::required_snr_db_for_bits(8));
  EXPECT_GT(s8, s4);
}

TEST(Photodetector, RequiredSnrFormula) {
  EXPECT_NEAR(Photodetector::required_snr_db_for_bits(8), 49.92, 0.01);
  EXPECT_NEAR(Photodetector::required_snr_db_for_bits(1), 7.78, 0.01);
}

TEST(Photodetector, WiderBandwidthNeedsMorePower) {
  // At 6-bit SNR both bandwidths are reachable (an 8-bit target at 50 GHz is
  // RIN-limited and correctly rejected by sensitivity_w).
  PhotodetectorConfig narrow;
  narrow.bandwidth_hz = 1e9;
  PhotodetectorConfig wide;
  wide.bandwidth_hz = 20e9;
  const double req = Photodetector::required_snr_db_for_bits(6);
  EXPECT_LT(Photodetector(narrow).sensitivity_w(req),
            Photodetector(wide).sensitivity_w(req));
}

TEST(Photodetector, RinCeilingRejectsUnreachableSnr) {
  PhotodetectorConfig wide;
  wide.bandwidth_hz = 50e9;
  EXPECT_THROW((void)Photodetector(wide).sensitivity_w(
                   Photodetector::required_snr_db_for_bits(10)),
               lumos::InvalidArgument);
}

TEST(Photodetector, InvalidConfigRejected) {
  PhotodetectorConfig c;
  c.responsivity_a_per_w = 0.0;
  EXPECT_THROW(Photodetector{c}, lumos::InvalidArgument);
}

TEST(Bpd, DifferentialCurrentIsSigned) {
  const BalancedPhotodetector bpd({});
  EXPECT_GT(bpd.differential_current(2e-3, 1e-3), 0.0);
  EXPECT_LT(bpd.differential_current(1e-3, 2e-3), 0.0);
  EXPECT_DOUBLE_EQ(bpd.differential_current(1e-3, 1e-3), 0.0);
}

TEST(Bpd, DetectNormalisesToFullScale) {
  const BalancedPhotodetector bpd({});
  EXPECT_NEAR(bpd.detect(1e-3, 0.0, 1e-3), 1.0, 1e-12);
  EXPECT_NEAR(bpd.detect(0.0, 1e-3, 1e-3), -1.0, 1e-12);
  EXPECT_NEAR(bpd.detect(0.75e-3, 0.25e-3, 1e-3), 0.5, 1e-12);
}

TEST(Bpd, NoiseSigmaCombinesArms) {
  const BalancedPhotodetector bpd({});
  double sigma_both = 0.0;
  double sigma_one = 0.0;
  (void)bpd.detect(1e-3, 1e-3, 1e-3, &sigma_both);
  (void)bpd.detect(1e-3, 0.0, 1e-3, &sigma_one);
  EXPECT_GT(sigma_both, sigma_one);  // two loaded arms add noise in quadrature
  EXPECT_GT(sigma_one, 0.0);
}

TEST(Bpd, FullScaleMustBePositive) {
  const BalancedPhotodetector bpd({});
  EXPECT_THROW((void)bpd.detect(1e-3, 0.0, 0.0), lumos::InvalidArgument);
}

// Sweep: the relative noise (sigma / full-scale) at sensitivity supports the
// requested bit depth with ~half-LSB margin.
class BitDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitDepthSweep, NoiseBelowLsbAtSensitivity) {
  const int bits = GetParam();
  const Photodetector pd({});
  const double sens = pd.sensitivity_w(Photodetector::required_snr_db_for_bits(bits));
  const BalancedPhotodetector bpd({});
  double sigma = 0.0;
  (void)bpd.detect(sens, 0.0, sens, &sigma);
  // The dark arm adds its (thermal) noise in quadrature on top of the single-
  // arm sensitivity condition, hence the sqrt(2) allowance.
  const double lsb = 1.0 / std::pow(2.0, bits);
  EXPECT_LT(sigma, lsb * std::sqrt(2.0) + 1e-12) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, BitDepthSweep, ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace lumos::phot
