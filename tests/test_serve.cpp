// Tests for the serving simulator subsystem: the workload registry, trace
// generation, the estimate cache (bit-identical to uncached calls), the
// schedulers, the Scenario-driven discrete-event loop, and campaign
// determinism (the parallel_for sweep must equal a serial simulation of the
// same point).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "perf_report_matchers.hpp"
#include "serve/campaign.hpp"
#include "serve/simulator.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {
namespace {

// Scenario over an explicit pre-materialised trace (the shape most tests
// want: hand the loop exactly these requests).
FleetMetrics simulate_trace(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                            std::vector<Request> trace, SchedulerKind scheduler,
                            const BatchPolicy& policy, const SimConfig& sim = {}) {
  Scenario scenario;
  scenario.fleet = fleet;
  scenario.catalog = catalog;
  scenario.scheduler = scheduler;
  scenario.batch = policy;
  scenario.sim = sim;
  scenario.trace = std::move(trace);
  return simulate(scenario);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, TransformerLookupsMatchZooConfigs) {
  const nn::TransformerConfig bert = sim::transformer_by_name("bert-base", 128);
  EXPECT_EQ(bert.name, nn::bert_base(128).name);
  EXPECT_EQ(bert.layers, nn::bert_base(128).layers);
  EXPECT_EQ(bert.d_model, nn::bert_base(128).d_model);
  EXPECT_EQ(sim::transformer_by_name("gpt2", 256).seq_len, nn::gpt2_small(256).seq_len);
}

TEST(Registry, DatasetLookupHasPublishedDimensions) {
  const graph::GraphDataset cora = sim::dataset_by_name("cora");
  EXPECT_EQ(cora.graph.node_count(), 2708u);
  EXPECT_EQ(cora.feature_dim, 1433u);
}

TEST(Registry, UnknownNamesThrow) {
  EXPECT_THROW((void)sim::transformer_by_name("bort"), InvalidArgument);
  EXPECT_THROW((void)sim::gnn_by_name("gnn9000"), InvalidArgument);
  EXPECT_THROW((void)sim::dataset_by_name("imagenet"), InvalidArgument);
}

// The error text must list every accepted name so a caller can self-correct.
TEST(Registry, UnknownNameErrorsListAcceptedNames) {
  const auto expect_lists = [](const auto& call, const std::vector<std::string>& names,
                               const char* bad) {
    try {
      call();
      FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(bad), std::string::npos) << what;
      for (const std::string& name : names) {
        EXPECT_NE(what.find(name), std::string::npos) << what << " missing " << name;
      }
    }
  };
  expect_lists([] { (void)sim::transformer_by_name("bort"); }, sim::transformer_names(),
               "bort");
  expect_lists([] { (void)sim::gnn_by_name("gnn9000"); }, sim::gnn_names(), "gnn9000");
  expect_lists([] { (void)sim::dataset_by_name("imagenet"); }, sim::dataset_names(),
               "imagenet");
}

TEST(Registry, NameListsRoundTrip) {
  for (const std::string& name : sim::transformer_names()) {
    EXPECT_NO_THROW((void)sim::transformer_by_name(name));
  }
  for (const std::string& name : sim::gnn_names()) EXPECT_NO_THROW((void)sim::gnn_by_name(name));
  for (const std::string& name : sim::dataset_names()) {
    EXPECT_NO_THROW((void)sim::dataset_by_name(name));
  }
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(Trace, IsDeterministicAndSorted) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  TraceConfig cfg;
  cfg.offered_qps = 5000.0;
  cfg.request_count = 2000;
  cfg.seed = 42;
  const std::vector<Request> a = generate_trace(catalog, cfg);
  const std::vector<Request> b = generate_trace(catalog, cfg);
  ASSERT_EQ(a.size(), cfg.request_count);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].workload, b[i].workload);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
    EXPECT_LT(a[i].workload, catalog.size());
  }
}

TEST(Trace, PoissonHitsOfferedRate) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  TraceConfig cfg;
  cfg.offered_qps = 10000.0;
  cfg.request_count = 100000;
  cfg.seed = 3;
  const std::vector<Request> trace = generate_trace(catalog, cfg);
  const double rate = static_cast<double>(trace.size()) / trace.back().arrival_s;
  EXPECT_NEAR(rate, cfg.offered_qps, 0.05 * cfg.offered_qps);
}

TEST(Trace, BurstyKeepsLongRunRate) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  TraceConfig cfg;
  cfg.offered_qps = 10000.0;
  cfg.request_count = 200000;
  cfg.process = ArrivalProcess::kBursty;
  cfg.seed = 5;
  const std::vector<Request> trace = generate_trace(catalog, cfg);
  const double rate = static_cast<double>(trace.size()) / trace.back().arrival_s;
  EXPECT_NEAR(rate, cfg.offered_qps, 0.10 * cfg.offered_qps);
}

TEST(Trace, MixFollowsWeights) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();  // weights 4:2:3:1
  TraceConfig cfg;
  cfg.offered_qps = 1000.0;
  cfg.request_count = 50000;
  cfg.seed = 9;
  const std::vector<Request> trace = generate_trace(catalog, cfg);
  std::vector<double> counts(catalog.size(), 0.0);
  for (const Request& r : trace) counts[r.workload] += 1.0;
  const double total = static_cast<double>(trace.size());
  for (std::size_t w = 0; w < catalog.size(); ++w) {
    const double want = catalog.at(w).mix_weight / catalog.total_weight();
    EXPECT_NEAR(counts[w] / total, want, 0.01) << "workload " << w;
  }
}

// ---------------------------------------------------------------------------
// Estimate cache
// ---------------------------------------------------------------------------

using lumos::testing::expect_reports_identical;

TEST(EstimateCache, TronReportsBitIdenticalToUncached) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const EstimateCache cache("tron", catalog);
  const tron::TronAccelerator acc(arch::tron_config_by_name("tron"));
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      expect_reports_identical(
          cache.estimate(w, batch),
          acc.estimate_batch(catalog.workload(w).transformer_config(), batch));
    }
  }
}

TEST(EstimateCache, GhostReportsBitIdenticalToUncached) {
  const WorkloadCatalog catalog = WorkloadCatalog::ghost_default();
  const EstimateCache cache("ghost", catalog);
  const ghost::GhostAccelerator acc(arch::ghost_config_by_name("ghost"));
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    const arch::Workload& wl = catalog.workload(w);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      expect_reports_identical(cache.estimate(w, batch),
                               acc.estimate_batch(wl.gnn_model(), wl.dataset(), batch));
    }
  }
}

TEST(EstimateCache, MissesOncePerKey) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const EstimateCache cache("tron", catalog);
  (void)cache.estimate(0, 1);
  (void)cache.estimate(0, 1);
  (void)cache.estimate(0, 2);
  (void)cache.estimate(0, 1);
  EXPECT_EQ(cache.lookups(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
}

// ---------------------------------------------------------------------------
// GHOST batched estimates
// ---------------------------------------------------------------------------

TEST(GhostBatch, BatchOneMatchesEstimateBitForBit) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const gnn::GnnModelConfig model = sim::gnn_by_name("graphsage");
  const graph::GraphDataset ds = sim::dataset_by_name("citeseer");
  expect_reports_identical(acc.estimate(model, ds), acc.estimate_batch(model, ds, 1));
}

TEST(GhostBatch, LatencySubLinearAndEnergyAmortised) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const gnn::GnnModelConfig model = sim::gnn_by_name("gcn");
  const graph::GraphDataset ds = sim::dataset_by_name("cora");
  const PerfReport one = acc.estimate_batch(model, ds, 1);
  const PerfReport eight = acc.estimate_batch(model, ds, 8);
  EXPECT_GE(eight.latency_s, one.latency_s);
  EXPECT_LT(eight.latency_s, 8.0 * one.latency_s);
  EXPECT_EQ(eight.op_count, 8 * one.op_count);
  // Per-request energy improves: the weight stream amortises.
  EXPECT_LT(eight.total_energy_j / 8.0, one.total_energy_j);
}

// ---------------------------------------------------------------------------
// Schedulers
// ---------------------------------------------------------------------------

Request make_request(std::uint64_t id, double arrival_s, std::uint32_t workload) {
  return {id, arrival_s, workload};
}

TEST(Scheduler, FifoServesInArrivalOrder) {
  const auto sched = make_scheduler(SchedulerKind::kFifo, {});
  sched->enqueue(make_request(0, 0.0, 2), 0.0);
  sched->enqueue(make_request(1, 0.1, 0), 0.1);
  EXPECT_TRUE(sched->ready(0.1));
  const std::vector<Request> first = sched->pop(0.1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, 0u);
  EXPECT_EQ(sched->pop(0.1)[0].id, 1u);
  EXPECT_FALSE(sched->ready(0.2));
}

TEST(Scheduler, DynamicBatchDispatchesFullBucketImmediately) {
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_wait_s = 1.0;
  const auto sched = make_scheduler(SchedulerKind::kDynamicBatch, policy);
  for (std::uint64_t i = 0; i < 4; ++i) {
    sched->enqueue(make_request(i, 0.0, 7), 0.0);
  }
  EXPECT_TRUE(sched->ready(0.0));  // full bucket: no deadline wait
  const std::vector<Request> batch = sched->pop(0.0);
  ASSERT_EQ(batch.size(), 4u);
  for (const Request& r : batch) EXPECT_EQ(r.workload, 7u);
  EXPECT_EQ(sched->queued(), 0u);
}

TEST(Scheduler, DynamicBatchWaitsForDeadlineWhenUnderfull) {
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_s = 0.5;
  const auto sched = make_scheduler(SchedulerKind::kDynamicBatch, policy);
  sched->enqueue(make_request(0, 1.0, 3), 1.0);
  EXPECT_FALSE(sched->ready(1.2));
  EXPECT_EQ(sched->next_deadline_s(), 1.5);
  EXPECT_TRUE(sched->ready(1.5));
  const std::vector<Request> batch = sched->pop(1.5);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 0u);
}

TEST(Scheduler, MaskedPopSkipsDisallowedWorkloads) {
  // Kind-aware routing: a mask hides workloads with no idle compatible
  // accelerator; pops serve the oldest allowed request and leave the rest.
  const std::vector<char> only_workload_1{0, 1};
  const WorkloadMask mask(&only_workload_1);

  const auto fifo = make_scheduler(SchedulerKind::kFifo, {});
  fifo->enqueue(make_request(0, 0.0, 0), 0.0);
  fifo->enqueue(make_request(1, 0.1, 1), 0.1);
  EXPECT_TRUE(fifo->ready(0.1));
  EXPECT_TRUE(fifo->ready(0.1, mask));
  const std::vector<Request> batch = fifo->pop(0.1, mask);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 1u);  // skipped the disallowed head
  EXPECT_EQ(fifo->queued(), 1u);
  EXPECT_FALSE(fifo->ready(0.1, mask));  // only workload 0 remains

  BatchPolicy policy;
  policy.max_batch = 2;
  policy.max_wait_s = 0.0;
  const auto batcher = make_scheduler(SchedulerKind::kDynamicBatch, policy);
  batcher->enqueue(make_request(0, 0.0, 0), 0.0);
  batcher->enqueue(make_request(1, 0.1, 1), 0.1);
  EXPECT_EQ(batcher->next_deadline_s(mask), 0.1);  // workload 0's deadline hidden
  const std::vector<Request> b = batcher->pop(0.2, mask);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].workload, 1u);
}

TEST(Scheduler, DynamicBatchServesLongestWaitingBucketFirst) {
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.max_wait_s = 0.0;  // everything is ready immediately
  const auto sched = make_scheduler(SchedulerKind::kDynamicBatch, policy);
  sched->enqueue(make_request(0, 0.2, 5), 0.2);
  sched->enqueue(make_request(1, 0.1, 9), 0.1);
  const std::vector<Request> first = sched->pop(0.3);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].workload, 9u);  // oldest head-of-bucket wins
}

// ---------------------------------------------------------------------------
// Percentiles
// ---------------------------------------------------------------------------

TEST(Percentile, NearestRankOnKnownSamples) {
  std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_EQ(percentile(v, 0.5), 3.0);
  EXPECT_EQ(percentile(v, 1.0), 5.0);
  EXPECT_EQ(percentile(v, 0.0), 1.0);
  std::vector<double> empty;
  EXPECT_EQ(percentile(empty, 0.99), 0.0);
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

struct SimSetup {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  FleetConfig fleet = FleetConfig::homogeneous("tron", 4);
  double capacity = fleet_capacity_qps(catalog, "tron", 4, 8);
};

FleetMetrics run_sim(const SimSetup& s, double qps_fraction, SchedulerKind scheduler,
                     std::size_t requests = 10000, std::uint64_t seed = 21) {
  // The generated-trace path: traffic knobs in the Scenario, the trace
  // materialised inside simulate() by the OpenLoopSource.
  Scenario scenario;
  scenario.fleet = s.fleet;
  scenario.catalog = s.catalog;
  scenario.scheduler = scheduler;
  scenario.batch.max_batch = 8;
  scenario.traffic.open.offered_qps = qps_fraction * s.capacity;
  scenario.traffic.open.request_count = requests;
  scenario.traffic.open.seed = seed;
  return simulate(scenario);
}

TEST(Simulator, CompletesEveryRequestAndConservesCounts) {
  const SimSetup s;
  const FleetMetrics m = run_sim(s, 0.6, SchedulerKind::kDynamicBatch);
  EXPECT_EQ(m.completed, 10000u);
  std::size_t dispatched_requests = 0;
  std::size_t dispatches = 0;
  for (std::size_t b = 0; b < m.batch_histogram.size(); ++b) {
    dispatched_requests += b * m.batch_histogram[b];
    dispatches += m.batch_histogram[b];
  }
  EXPECT_EQ(dispatched_requests, m.completed);
  EXPECT_EQ(dispatches, m.dispatches);
  EXPECT_GT(m.fleet_energy_j, 0.0);
  EXPECT_GT(m.p99_latency_s, 0.0);
  EXPECT_GE(m.p99_latency_s, m.p50_latency_s);
  EXPECT_GE(m.max_latency_s, m.p999_latency_s);
}

TEST(Simulator, LightLoadMeetsSlo) {
  const SimSetup s;
  const FleetMetrics m = run_sim(s, 0.3, SchedulerKind::kDynamicBatch);
  EXPECT_EQ(m.slo_attainment, 1.0);
  EXPECT_NEAR(m.goodput_qps, m.throughput_qps, 1e-9);
}

TEST(Simulator, OverloadSaturatesAndQueues) {
  const SimSetup s;
  const FleetMetrics m = run_sim(s, 3.0, SchedulerKind::kDynamicBatch);
  // Offered 3x capacity: the fleet pins at ~capacity and queues grow deep.
  EXPECT_LT(m.throughput_qps, 1.2 * s.capacity);
  EXPECT_GT(m.fleet_utilization, 0.95);
  EXPECT_GT(m.peak_queue_depth, 100u);
  EXPECT_LT(m.slo_attainment, 0.5);
}

TEST(Simulator, BatchingBeatsFifoUnderLoad) {
  const SimSetup s;
  const FleetMetrics fifo = run_sim(s, 0.8, SchedulerKind::kFifo);
  const FleetMetrics batch = run_sim(s, 0.8, SchedulerKind::kDynamicBatch);
  // 0.8x the *batched* capacity overloads the unbatched fleet.
  EXPECT_GT(batch.goodput_qps, 2.0 * fifo.goodput_qps);
  EXPECT_LT(batch.p99_latency_s, fifo.p99_latency_s);
}

TEST(Simulator, RunsAreBitReproducible) {
  const SimSetup s;
  const FleetMetrics a = run_sim(s, 0.7, SchedulerKind::kDynamicBatch);
  const FleetMetrics b = run_sim(s, 0.7, SchedulerKind::kDynamicBatch);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.dispatches, b.dispatches);
}

TEST(Simulator, HeterogeneousEnergyRoutingCompletes) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  const FleetConfig fleet = FleetConfig::heterogeneous("tron", "tron-eco", 4);
  TraceConfig cfg;
  cfg.offered_qps = 0.3 * fleet_capacity_qps(catalog, "tron", 4, 8);
  cfg.request_count = 5000;
  cfg.seed = 33;
  BatchPolicy policy;
  const FleetMetrics m = simulate_trace(fleet, catalog, generate_trace(catalog, cfg),
                                        SchedulerKind::kDynamicBatch, policy);
  EXPECT_EQ(m.completed, 5000u);
  EXPECT_GT(m.energy_per_request_j, 0.0);
}

// ---------------------------------------------------------------------------
// Mixed-kind catalogs and fleets (kind-aware routing)
// ---------------------------------------------------------------------------

TEST(MixedFleet, ServesMixedCatalogEndToEnd) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  EXPECT_TRUE(catalog.has_kind(arch::WorkloadKind::kTransformer));
  EXPECT_TRUE(catalog.has_kind(arch::WorkloadKind::kGnn));
  const FleetConfig fleet = FleetConfig::cycled({"tron", "ghost"}, 4);
  TraceConfig cfg;
  cfg.offered_qps = 0.5 * fleet_capacity_qps(catalog, fleet, 8);
  cfg.request_count = 8000;
  cfg.seed = 44;
  BatchPolicy policy;
  const FleetMetrics m = simulate_trace(fleet, catalog, generate_trace(catalog, cfg),
                                        SchedulerKind::kDynamicBatch, policy);
  // Every request completes; kind-aware routing is what makes this possible
  // (a TRON slot refuses GNN batches, so any mis-route would throw inside
  // the adapter).
  EXPECT_EQ(m.completed, 8000u);
  EXPECT_GT(m.fleet_energy_j, 0.0);
}

TEST(MixedFleet, MixedRunsAreBitReproducible) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  const FleetConfig fleet = FleetConfig::cycled({"tron", "ghost"}, 4);
  TraceConfig cfg;
  cfg.offered_qps = 0.7 * fleet_capacity_qps(catalog, fleet, 8);
  cfg.request_count = 6000;
  cfg.seed = 55;
  BatchPolicy policy;
  const std::vector<Request> trace = generate_trace(catalog, cfg);
  const FleetMetrics a = simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  const FleetMetrics b = simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, policy);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.dispatches, b.dispatches);
}

TEST(MixedFleet, MixedFifoCompletesDespiteHeadOfLineKinds) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  const FleetConfig fleet = FleetConfig::cycled({"tron", "ghost"}, 2);
  TraceConfig cfg;
  cfg.offered_qps = 0.3 * fleet_capacity_qps(catalog, fleet, 1);
  cfg.request_count = 3000;
  cfg.seed = 66;
  const FleetMetrics m = simulate_trace(fleet, catalog, generate_trace(catalog, cfg),
                                        SchedulerKind::kFifo, BatchPolicy{});
  EXPECT_EQ(m.completed, 3000u);
}

TEST(MixedFleet, SingleKindFleetCannotServeMixedCatalog) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 4);
  TraceConfig cfg;
  cfg.offered_qps = 1000.0;
  cfg.request_count = 100;
  const std::vector<Request> trace = generate_trace(catalog, cfg);
  try {
    (void)simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, BatchPolicy{});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot serve"), std::string::npos) << what;
    EXPECT_NE(what.find("gnn"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Construction-time validation (InvalidArgument naming the bad field)
// ---------------------------------------------------------------------------

void expect_invalid(const std::function<void()>& call, const char* field) {
  try {
    call();
    FAIL() << "expected InvalidArgument naming " << field;
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
  }
}

TEST(Validation, CatalogRejectsNonPositiveMixWeights) {
  WorkloadCatalog c;
  expect_invalid(
      [&] { c.add_transformer("bad", sim::transformer_by_name("bert-base"), 0.0); },
      "mix_weight");
  expect_invalid(
      [&] { c.add_transformer("bad", sim::transformer_by_name("bert-base"), -2.0); },
      "mix_weight");
}

TEST(Validation, ScenarioNamesBadField) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  TraceConfig tc;
  tc.request_count = 10;
  const std::vector<Request> trace = generate_trace(catalog, tc);
  const FleetConfig fleet = FleetConfig::homogeneous("tron", 1);

  FleetConfig empty_fleet;
  expect_invalid(
      [&] {
        (void)simulate_trace(empty_fleet, catalog, trace, SchedulerKind::kFifo,
                             BatchPolicy{});
      },
      "FleetConfig.accelerators");
  expect_invalid(
      [&] {
        (void)simulate_trace(fleet, WorkloadCatalog{}, trace, SchedulerKind::kFifo,
                             BatchPolicy{});
      },
      "WorkloadCatalog");
  BatchPolicy zero;
  zero.max_batch = 0;
  expect_invalid(
      [&] { (void)simulate_trace(fleet, catalog, trace, SchedulerKind::kDynamicBatch, zero); },
      "max_batch");
  const std::vector<Request> bogus{{0, 0.0, 99}};  // workload index out of range
  expect_invalid(
      [&] { (void)simulate_trace(fleet, catalog, bogus, SchedulerKind::kFifo, BatchPolicy{}); },
      "workload index");

  // Traffic-config validation: an empty explicit trace means "generate", so
  // the generator knobs must be sane.
  Scenario scenario;
  scenario.fleet = fleet;
  scenario.catalog = catalog;
  scenario.traffic.open.request_count = 0;
  expect_invalid([&] { (void)simulate(scenario); }, "request_count");
  scenario.traffic.open.request_count = 100;
  scenario.traffic.open.offered_qps = -1.0;
  expect_invalid([&] { (void)simulate(scenario); }, "offered_qps");
  scenario.traffic.open.offered_qps = 1000.0;
  scenario.traffic.mode = LoopMode::kClosed;
  scenario.traffic.closed.sessions = 0;
  expect_invalid([&] { (void)simulate(scenario); }, "sessions");
  scenario.traffic.closed.sessions = 4;
  scenario.traffic.closed.requests_per_session = 0;
  expect_invalid([&] { (void)simulate(scenario); }, "requests_per_session");
  scenario.traffic.closed.requests_per_session = 10;
  scenario.traffic.closed.think_time_mean_s = -1.0;
  expect_invalid([&] { (void)simulate(scenario); }, "think_time_mean_s");
}

TEST(Validation, CatalogRejectsBadSeqLenConfigs) {
  WorkloadCatalog tron = WorkloadCatalog::tron_default();
  SeqLenConfig cfg;
  cfg.dist = SeqLenDist::kUniform;
  cfg.bucket = 0;
  expect_invalid([&] { tron.set_seqlen(0, cfg); }, "bucket");
  cfg = SeqLenConfig{};
  cfg.dist = SeqLenDist::kUniform;
  cfg.min_len = 512;
  cfg.max_len = 16;
  expect_invalid([&] { tron.set_seqlen(0, cfg); }, "min_len <= max_len");
  cfg = SeqLenConfig{};
  cfg.dist = SeqLenDist::kLogNormal;
  cfg.log_sigma = 0.0;
  expect_invalid([&] { tron.set_seqlen(0, cfg); }, "log_sigma");

  // GNN entries have no sequence dimension: only kFixed is accepted.
  WorkloadCatalog ghost = WorkloadCatalog::ghost_default();
  cfg = SeqLenConfig{};
  cfg.dist = SeqLenDist::kUniform;
  expect_invalid([&] { ghost.set_seqlen(0, cfg); }, "cannot sample sequence lengths");
  EXPECT_NO_THROW(ghost.set_seqlen(0, SeqLenConfig{}));
  // apply_seqlen_dist over a mixed catalog touches only transformer entries.
  WorkloadCatalog mixed = WorkloadCatalog::mixed_default();
  EXPECT_NO_THROW(mixed.apply_seqlen_dist(SeqLenDist::kLogNormal));
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const bool is_transformer =
        mixed.workload(i).kind() == arch::WorkloadKind::kTransformer;
    EXPECT_EQ(mixed.at(i).seqlen.dist != SeqLenDist::kFixed, is_transformer);
  }
}

TEST(Validation, FleetFactoriesRejectEmptyAndZero) {
  expect_invalid([] { (void)FleetConfig::cycled({}, 4); }, "specs");
  expect_invalid([] { (void)FleetConfig::homogeneous("tron", 0); }, "fleet size");
}

TEST(Validation, CampaignConfigNamesBadField) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig good;
  good.qps = {1000.0};
  good.requests_per_point = 100;

  CampaignConfig c = good;
  c.qps.clear();
  expect_invalid([&] { (void)run_campaign(c, catalog); }, "CampaignConfig.qps");
  c = good;
  c.qps = {-5.0};
  expect_invalid([&] { (void)run_campaign(c, catalog); }, "CampaignConfig.qps");
  c = good;
  c.schedulers.clear();
  expect_invalid([&] { (void)run_campaign(c, catalog); }, "CampaignConfig.schedulers");
  c = good;
  c.fleet_sizes = {0};
  expect_invalid([&] { (void)run_campaign(c, catalog); }, "CampaignConfig.fleet_sizes");
  c = good;
  c.max_batches = {0};
  expect_invalid([&] { (void)run_campaign(c, catalog); }, "CampaignConfig.max_batches");
  c = good;
  c.requests_per_point = 0;
  expect_invalid([&] { (void)run_campaign(c, catalog); },
                 "CampaignConfig.requests_per_point");
  c = good;
  c.fleet_template.clear();
  expect_invalid([&] { (void)run_campaign(c, catalog); }, "CampaignConfig.fleet_template");
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

TEST(Campaign, ParallelSweepMatchesSerialSimulation) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.6 * fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.requests_per_point = 5000;
  cfg.seed = 17;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 1u);

  // Re-run the same grid point serially with the campaign's derived seed: the
  // parallel_for sweep must be bit-identical (this plus the CI LUMOS_THREADS
  // matrix locks in determinism across thread counts).
  TraceConfig trace_cfg;
  trace_cfg.offered_qps = cfg.qps[0];
  trace_cfg.request_count = cfg.requests_per_point;
  trace_cfg.seed = cfg.seed + 0x9E3779B9u * 1;
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_wait_s = cfg.max_wait_s;
  SimConfig sim_cfg;
  sim_cfg.slo_scale = cfg.slo_scale;
  const FleetMetrics serial =
      simulate_trace(FleetConfig::homogeneous("tron", 2), catalog,
                     generate_trace(catalog, trace_cfg), SchedulerKind::kDynamicBatch,
                     policy, sim_cfg);
  EXPECT_EQ(points[0].metrics.p99_latency_s, serial.p99_latency_s);
  EXPECT_EQ(points[0].metrics.goodput_qps, serial.goodput_qps);
  EXPECT_EQ(points[0].metrics.fleet_energy_j, serial.fleet_energy_j);
  EXPECT_EQ(points[0].metrics.dispatches, serial.dispatches);
}

TEST(Campaign, FifoPointsIgnoreBatchGrid) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {1000.0, 2000.0};
  cfg.schedulers = {SchedulerKind::kFifo, SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {1};
  cfg.max_batches = {4, 8};
  cfg.requests_per_point = 200;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  // FIFO collapses the batch dimension: 2 qps + 2 batches x 2 qps = 6 points.
  EXPECT_EQ(points.size(), 6u);
}

TEST(Campaign, MixedFleetTemplateSweepCompletes) {
  const WorkloadCatalog catalog = WorkloadCatalog::mixed_default();
  CampaignConfig cfg;
  cfg.fleet_template = {"tron", "ghost"};
  cfg.qps = {0.5 * fleet_capacity_qps(catalog, FleetConfig::cycled({"tron", "ghost"}, 4), 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {4};
  cfg.max_batches = {8};
  cfg.requests_per_point = 4000;
  cfg.seed = 23;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].metrics.completed, 4000u);
  EXPECT_GT(points[0].metrics.goodput_qps, 0.0);
}

}  // namespace
}  // namespace lumos::serve
