// Tests for the DAC/ADC cost-and-fidelity models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "photonics/converters.hpp"

namespace lumos::phot {
namespace {

TEST(Dac, EnergyScalesWithBits) {
  DacConfig c8;
  c8.bits = 8;
  DacConfig c10 = c8;
  c10.bits = 10;
  EXPECT_NEAR(DacModel(c10).energy_per_conversion_j(),
              4.0 * DacModel(c8).energy_per_conversion_j(), 1e-18);
}

TEST(Dac, LatencyIsOneSamplePeriod) {
  DacConfig c;
  c.sample_rate_hz = 5e9;
  EXPECT_DOUBLE_EQ(DacModel(c).conversion_latency_s(), 0.2e-9);
}

TEST(Dac, QuantizeSnapsToGrid) {
  const DacModel dac(DacConfig{});
  const double lsb = 1.0 / 255.0;
  EXPECT_DOUBLE_EQ(dac.quantize(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dac.quantize(1.0), 1.0);
  EXPECT_NEAR(dac.quantize(0.5), 0.5, lsb / 2.0 + 1e-12);
  // Any value is within half an LSB of its code.
  for (double v = 0.01; v < 1.0; v += 0.0137) {
    EXPECT_NEAR(dac.quantize(v), v, lsb / 2.0 + 1e-12);
  }
}

TEST(Dac, QuantizeClampsOutOfRange) {
  const DacModel dac(DacConfig{});
  EXPECT_DOUBLE_EQ(dac.quantize(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(dac.quantize(1.5), 1.0);
  EXPECT_DOUBLE_EQ(dac.quantize_signed(-2.0), -1.0);
  EXPECT_DOUBLE_EQ(dac.quantize_signed(2.0), 1.0);
}

TEST(Dac, SignedQuantizeSymmetric) {
  const DacModel dac(DacConfig{});
  for (double v = 0.0; v <= 1.0; v += 0.0731) {
    EXPECT_DOUBLE_EQ(dac.quantize_signed(v), -dac.quantize_signed(-v));
  }
  EXPECT_DOUBLE_EQ(dac.quantize_signed(0.0), 0.0);
}

TEST(Adc, EnergyScalesWithBits) {
  AdcConfig c6;
  c6.bits = 6;
  AdcConfig c8 = c6;
  c8.bits = 8;
  EXPECT_NEAR(AdcModel(c8).energy_per_conversion_j(),
              4.0 * AdcModel(c6).energy_per_conversion_j(), 1e-18);
}

TEST(Adc, CostsMoreThanDacAtIsoRate) {
  EXPECT_GT(AdcModel(AdcConfig{}).energy_per_conversion_j(),
            DacModel(DacConfig{}).energy_per_conversion_j());
}

TEST(Adc, QuantizeIdempotent) {
  const AdcModel adc(AdcConfig{});
  for (double v = 0.0; v <= 1.0; v += 0.0313) {
    const double q = adc.quantize(v);
    EXPECT_DOUBLE_EQ(adc.quantize(q), q);
  }
}

TEST(Converters, InvalidBitsRejected) {
  DacConfig d;
  d.bits = 0;
  EXPECT_THROW(DacModel{d}, lumos::InvalidArgument);
  AdcConfig a;
  a.bits = 20;
  EXPECT_THROW(AdcModel{a}, lumos::InvalidArgument);
}

TEST(Converters, EightBitEnergiesInPublishedRange) {
  // Sanity anchor: published 8-bit multi-GS/s converters land at ~1-5 pJ.
  const double dac_j = DacModel(DacConfig{}).energy_per_conversion_j();
  const double adc_j = AdcModel(AdcConfig{}).energy_per_conversion_j();
  EXPECT_GT(dac_j, 0.2e-12);
  EXPECT_LT(dac_j, 5e-12);
  EXPECT_GT(adc_j, 0.5e-12);
  EXPECT_LT(adc_j, 10e-12);
}

// Bit-depth sweep: quantisation error bound is half an LSB at every depth.
class ConverterBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConverterBitsSweep, HalfLsbErrorBound) {
  const int bits = GetParam();
  DacConfig c;
  c.bits = bits;
  const DacModel dac(c);
  const double lsb = 1.0 / (std::pow(2.0, bits) - 1.0);
  for (double v = 0.0; v <= 1.0; v += 0.0173) {
    EXPECT_LE(std::fabs(dac.quantize(v) - v), lsb / 2.0 + 1e-12) << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ConverterBitsSweep, ::testing::Values(2, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace lumos::phot
