// Tests for the observability layer: the observers-never-change-results
// contract (disabled AND enabled runs are bit-identical to the unobserved
// simulator), span/counter conservation between the lifecycle tracer and
// FleetMetrics under faults + retries + admission, timeline window sums,
// event-loop profiler counts, deterministic id-hash sampling, the
// HdrHistogram percentile sketch (bounded relative error vs the exact path,
// insertion-order independence, merging), the hdr percentile mode of the
// simulator/campaign, and the FleetMetrics::to_table section gates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "serve/campaign.hpp"
#include "serve/names.hpp"
#include "serve/observe.hpp"
#include "serve/simulator.hpp"

namespace lumos::serve {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Open-loop TRON scenario with every robustness feature on: seeded slot
// faults (aborts + requeues), tenant timeouts with retries, and queue-cap
// admission under 2x overload — so every observer hook fires.
Scenario faulty_scenario(std::size_t requests = 8000) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  Scenario scenario;
  scenario.fleet = FleetConfig::homogeneous("tron", 2);
  const double capacity = fleet_capacity_qps(catalog, "tron", 2, 8);
  catalog.apply_timeout(4e-3);
  scenario.catalog = catalog;
  scenario.scheduler = SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = 8;
  scenario.sim.faults.mtbf_s = 40e-3;
  scenario.sim.faults.mttr_s = 5e-3;
  scenario.sim.retry.max_attempts = 3;
  scenario.sim.admission.policy = AdmissionPolicy::kQueueCap;
  scenario.sim.admission.queue_cap = 48;
  scenario.traffic.open.offered_qps = 2.0 * capacity;
  scenario.traffic.open.request_count = requests;
  scenario.traffic.open.seed = 77;
  return scenario;
}

void expect_bit_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_EQ(a.goodput_qps, b.goodput_qps);
  EXPECT_EQ(a.fleet_energy_j, b.fleet_energy_j);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.timed_out_requests, b.timed_out_requests);
  EXPECT_EQ(a.attempt_timeouts, b.attempt_timeouts);
  EXPECT_EQ(a.retried_attempts, b.retried_attempts);
  EXPECT_EQ(a.failed_batches, b.failed_batches);
  EXPECT_EQ(a.requeued_requests, b.requeued_requests);
  EXPECT_EQ(a.slot_failures, b.slot_failures);
  EXPECT_EQ(a.fleet_availability, b.fleet_availability);
}

std::size_t count_kind(const std::vector<RequestEvent>& events, RequestEventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const RequestEvent& e) { return e.kind == kind; }));
}

double rel_err(double estimate, double exact) {
  return std::abs(estimate - exact) / std::max(std::abs(exact), 1e-300);
}

// ---------------------------------------------------------------------------
// Config validation + sampling
// ---------------------------------------------------------------------------

TEST(Observe, DisabledConfigIsValidAndInert) {
  const ObserveConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(validate_observe(config));
}

TEST(Observe, ValidationNamesTheBadField) {
  ObserveConfig config;
  config.trace.enabled = true;
  config.trace.sample = 1.5;
  try {
    validate_observe(config);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("sample"), std::string::npos);
  }
  config.trace.sample = 1.0;
  config.trace.max_request_events = 0;
  EXPECT_THROW(validate_observe(config), InvalidArgument);
  config.trace.max_request_events = 1;
  config.trace.max_batch_spans = 0;
  EXPECT_THROW(validate_observe(config), InvalidArgument);

  ObserveConfig timeline;
  timeline.timeline.enabled = true;
  timeline.timeline.window_s = 0.0;
  try {
    validate_observe(timeline);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("window_s"), std::string::npos);
  }
  // A disabled observer's knobs are never inspected.
  ObserveConfig off;
  off.trace.sample = -3.0;
  off.timeline.window_s = -1.0;
  EXPECT_NO_THROW(validate_observe(off));
}

TEST(Observe, IdHashSamplingIsDeterministicAndSeedDependent) {
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_TRUE(trace_sampled(id, 1, 1.0));
    EXPECT_FALSE(trace_sampled(id, 1, 0.0));
    EXPECT_EQ(trace_sampled(id, 9, 0.5), trace_sampled(id, 9, 0.5));
  }
  // Roughly half the ids pass at sample 0.5, and distinct seeds pick
  // distinct subsets.
  std::size_t hits = 0;
  std::size_t seed_disagreements = 0;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    hits += trace_sampled(id, 1, 0.5) ? 1 : 0;
    seed_disagreements += trace_sampled(id, 1, 0.5) != trace_sampled(id, 2, 0.5) ? 1 : 0;
  }
  EXPECT_GT(hits, 1600u);
  EXPECT_LT(hits, 2500u);
  EXPECT_GT(seed_disagreements, 0u);
}

// ---------------------------------------------------------------------------
// Observers never change results
// ---------------------------------------------------------------------------

TEST(Observe, EnabledObserversNeverChangeResults) {
  Scenario plain = faulty_scenario();
  const FleetMetrics unobserved = simulate(plain);

  Scenario observed = faulty_scenario();
  observed.observe.trace.enabled = true;
  observed.observe.timeline.enabled = true;
  observed.observe.profile = true;
  Observation obs;
  const FleetMetrics watched = simulate(observed, &obs);

  expect_bit_identical(unobserved, watched);
  ASSERT_NE(obs.tracer, nullptr);
  ASSERT_NE(obs.timeline, nullptr);
  ASSERT_NE(obs.profiler, nullptr);

  // A disabled config hands back no observers.
  Scenario off = faulty_scenario();
  Observation empty;
  const FleetMetrics again = simulate(off, &empty);
  expect_bit_identical(unobserved, again);
  EXPECT_EQ(empty.tracer, nullptr);
  EXPECT_EQ(empty.timeline, nullptr);
  EXPECT_EQ(empty.profiler, nullptr);
}

// ---------------------------------------------------------------------------
// Span/counter conservation
// ---------------------------------------------------------------------------

TEST(Observe, TracedSpansReconcileWithFleetMetricsCounters) {
  Scenario scenario = faulty_scenario();
  scenario.observe.trace.enabled = true;  // sample 1.0: every request traced
  Observation obs;
  const FleetMetrics m = simulate(scenario, &obs);
  ASSERT_NE(obs.tracer, nullptr);
  const LifecycleTracer& tracer = *obs.tracer;
  EXPECT_EQ(tracer.dropped_requests(), 0u);
  EXPECT_EQ(tracer.dropped_batch_spans(), 0u);

  // The run actually exercised every path it claims to reconcile.
  EXPECT_GT(m.shed_requests, 0u);
  EXPECT_GT(m.retried_attempts, 0u);
  EXPECT_GT(m.failed_batches, 0u);

  const std::vector<RequestEvent>& events = tracer.request_events();
  const std::size_t arrivals = count_kind(events, RequestEventKind::kArrival);
  const std::size_t completes = count_kind(events, RequestEventKind::kComplete);
  const std::size_t sheds = count_kind(events, RequestEventKind::kShed);
  const std::size_t timeouts = count_kind(events, RequestEventKind::kTimeout);

  // Every request's span is whole: one arrival, one terminal, and the
  // terminals partition exactly as the metrics counters say.
  EXPECT_EQ(arrivals, scenario.traffic.open.request_count);
  EXPECT_EQ(tracer.sampled_requests(), arrivals);
  EXPECT_EQ(completes, m.completed);
  EXPECT_EQ(sheds, m.shed_requests);
  EXPECT_EQ(timeouts, m.timed_out_requests);
  EXPECT_EQ(completes + sheds + timeouts, arrivals);

  EXPECT_EQ(count_kind(events, RequestEventKind::kRetry), m.retried_attempts);
  EXPECT_EQ(count_kind(events, RequestEventKind::kAttemptTimeout), m.attempt_timeouts);
  EXPECT_EQ(count_kind(events, RequestEventKind::kRequeue), m.requeued_requests);

  // Batch spans: one per dispatch, aborted spans match failed batches, and
  // per-request dispatch events sum to the spans' sizes.
  const std::vector<BatchSpan>& spans = tracer.batch_spans();
  EXPECT_EQ(spans.size(), m.dispatches);
  std::size_t aborted = 0;
  std::size_t span_requests = 0;
  for (const BatchSpan& s : spans) {
    aborted += s.aborted ? 1 : 0;
    span_requests += s.size;
    EXPECT_GE(s.end_s, s.start_s);
  }
  EXPECT_EQ(aborted, m.failed_batches);
  EXPECT_EQ(count_kind(events, RequestEventKind::kDispatch), span_requests);

  // The Chrome export of the same run is non-empty and names the slots.
  std::ostringstream trace_json;
  tracer.write_chrome_trace(trace_json);
  EXPECT_NE(trace_json.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.str().find("slot 1 [tron]"), std::string::npos);
  EXPECT_NE(trace_json.str().find("batch-abort"), std::string::npos);
}

TEST(Observe, SaturationDropsWholeRequestsNeverTruncates) {
  Scenario scenario = faulty_scenario(4000);
  scenario.observe.trace.enabled = true;
  scenario.observe.trace.max_request_events = 64;  // force saturation
  scenario.observe.trace.max_batch_spans = 16;     // force ring wrap
  Observation obs;
  (void)simulate(scenario, &obs);
  const LifecycleTracer& tracer = *obs.tracer;
  EXPECT_GT(tracer.dropped_requests(), 0u);
  EXPECT_GT(tracer.dropped_batch_spans(), 0u);
  EXPECT_LE(tracer.batch_spans().size(), 16u);
  // Every request that made it into the buffer has a balanced span.
  const std::vector<RequestEvent>& events = tracer.request_events();
  EXPECT_EQ(count_kind(events, RequestEventKind::kComplete) +
                count_kind(events, RequestEventKind::kShed) +
                count_kind(events, RequestEventKind::kTimeout),
            count_kind(events, RequestEventKind::kArrival));
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

TEST(Observe, TimelineWindowSumsMatchTotals) {
  Scenario scenario = faulty_scenario();
  scenario.observe.timeline.enabled = true;
  scenario.observe.timeline.window_s = 2e-3;
  Observation obs;
  const FleetMetrics m = simulate(scenario, &obs);
  ASSERT_NE(obs.timeline, nullptr);
  const TimelineRecorder& timeline = *obs.timeline;
  ASSERT_GT(timeline.windows().size(), 1u);

  TimelineWindow total;
  total.tenant_completed.resize(scenario.catalog.size(), 0);
  for (const TimelineWindow& w : timeline.windows()) {
    total.arrivals += w.arrivals;
    total.shed += w.shed;
    total.completed += w.completed;
    total.within_slo += w.within_slo;
    total.timed_out += w.timed_out;
    total.attempt_timeouts += w.attempt_timeouts;
    total.retries += w.retries;
    total.requeued += w.requeued;
    total.dispatches += w.dispatches;
    total.batch_aborts += w.batch_aborts;
    total.slot_failures += w.slot_failures;
    total.slot_recoveries += w.slot_recoveries;
    ASSERT_EQ(w.tenant_completed.size(), total.tenant_completed.size());
    for (std::size_t t = 0; t < w.tenant_completed.size(); ++t) {
      total.tenant_completed[t] += w.tenant_completed[t];
    }
  }
  EXPECT_EQ(total.arrivals, scenario.traffic.open.request_count);
  EXPECT_EQ(total.shed, m.shed_requests);
  EXPECT_EQ(total.completed, m.completed);
  EXPECT_EQ(total.timed_out, m.timed_out_requests);
  EXPECT_EQ(total.attempt_timeouts, m.attempt_timeouts);
  EXPECT_EQ(total.retries, m.retried_attempts);
  EXPECT_EQ(total.requeued, m.requeued_requests);
  EXPECT_EQ(total.dispatches, m.dispatches);
  EXPECT_EQ(total.batch_aborts, m.failed_batches);
  EXPECT_EQ(total.slot_failures, m.slot_failures);
  EXPECT_EQ(total.slot_recoveries, m.slot_recoveries);
  for (std::size_t t = 0; t < total.tenant_completed.size(); ++t) {
    EXPECT_EQ(total.tenant_completed[t], m.tenants[t].completed);
  }

  // CSV export: one header plus one row per window, with per-tenant columns.
  std::ostringstream csv;
  timeline.write_csv(csv);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(csv.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, timeline.windows().size() + 1);
  EXPECT_NE(csv.str().find("queue_depth_max"), std::string::npos);
  EXPECT_NE(csv.str().find("_within_slo"), std::string::npos);

  std::ostringstream json;
  timeline.write_json(json);
  EXPECT_NE(json.str().find("\"window_s\""), std::string::npos);
  EXPECT_NE(json.str().find("\"windows\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(Observe, ProfilerEventCountsMatchTheRun) {
  Scenario scenario = faulty_scenario();
  scenario.observe.profile = true;
  Observation obs;
  const FleetMetrics m = simulate(scenario, &obs);
  ASSERT_NE(obs.profiler, nullptr);
  const EventLoopProfiler& prof = *obs.profiler;
  EXPECT_EQ(prof.events(LoopSource::kArrivals), scenario.traffic.open.request_count);
  EXPECT_EQ(prof.events(LoopSource::kDispatch), m.dispatches);
  EXPECT_EQ(prof.events(LoopSource::kCompletions), m.dispatches - m.failed_batches);
  EXPECT_EQ(prof.events(LoopSource::kRetries), m.retried_attempts);
  EXPECT_GT(prof.events(LoopSource::kFaults), 0u);
  EXPECT_GT(prof.events(LoopSource::kSchedulerPop), 0u);
  EXPECT_GT(prof.events(LoopSource::kEstimate), 0u);
  EXPECT_GT(prof.iterations(), 0u);
  EXPECT_GE(prof.accounted_wall_s(), 0.0);

  std::ostringstream table;
  prof.to_table("event-loop profile").print(table);
  EXPECT_NE(table.str().find("scheduler-pop"), std::string::npos);
  EXPECT_NE(table.str().find("loop total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HdrHistogram
// ---------------------------------------------------------------------------

TEST(HdrHistogram, BoundedRelativeErrorOnThreeDistributions) {
  const double eps = 0.01;
  const std::vector<double> quantiles{0.5, 0.95, 0.99, 0.999};
  for (int dist = 0; dist < 3; ++dist) {
    Rng rng(42 + static_cast<std::uint64_t>(dist));
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      switch (dist) {
        case 0: samples.push_back(rng.uniform(1e-5, 1e-2)); break;
        case 1: samples.push_back(rng.exponential(1e-3) + 1e-9); break;
        default: samples.push_back(std::exp(rng.normal(std::log(1e-3), 0.7)));
      }
    }
    HdrHistogram hist(eps);
    for (const double s : samples) hist.add(s);
    EXPECT_EQ(hist.count(), samples.size());
    for (const double q : quantiles) {
      std::vector<double> copy = samples;
      const double exact = percentile(copy, q);
      EXPECT_LE(rel_err(hist.percentile(q), exact), 1.05 * eps)
          << "dist " << dist << " q " << q;
    }
    EXPECT_EQ(hist.min(), *std::min_element(samples.begin(), samples.end()));
    EXPECT_EQ(hist.max(), *std::max_element(samples.begin(), samples.end()));
  }
}

TEST(HdrHistogram, InsertionOrderNeverMatters) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.exponential(2e-3));
  HdrHistogram forward(0.01);
  HdrHistogram backward(0.01);
  for (const double s : samples) forward.add(s);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) backward.add(*it);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(forward.percentile(q), backward.percentile(q));
  }
  // The percentiles are pure functions of the bucket counts (bit-equal
  // above); the mean sums in insertion order, so it only agrees to rounding.
  EXPECT_NEAR(forward.mean(), backward.mean(), 1e-12 * forward.mean());
}

TEST(HdrHistogram, MergeEqualsSingleHistogram) {
  Rng rng(11);
  HdrHistogram all(0.02);
  HdrHistogram left(0.02);
  HdrHistogram right(0.02);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.exponential(1e-3);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  for (const double q : {0.5, 0.99}) EXPECT_EQ(left.percentile(q), all.percentile(q));

  HdrHistogram other_eps(0.05);
  other_eps.add(1.0);
  EXPECT_THROW(left.merge(other_eps), InvalidArgument);
}

TEST(HdrHistogram, RejectsBadConfiguration) {
  EXPECT_THROW(HdrHistogram(0.0), InvalidArgument);
  EXPECT_THROW(HdrHistogram(1.0), InvalidArgument);
  EXPECT_THROW(HdrHistogram(-0.1), InvalidArgument);
  EXPECT_THROW(HdrHistogram(0.01, 0.0), InvalidArgument);
  EXPECT_NO_THROW(HdrHistogram(0.5, 1e-12));
}

// ---------------------------------------------------------------------------
// hdr percentile mode in the simulator + campaign
// ---------------------------------------------------------------------------

TEST(PercentileModes, HdrTracksExactWithinConfiguredError) {
  Scenario exact_run = faulty_scenario();
  const FleetMetrics exact = simulate(exact_run);

  Scenario hdr_run = faulty_scenario();
  hdr_run.sim.percentile_mode = PercentileMode::kHdr;
  hdr_run.sim.hdr_relative_error = 0.01;
  const FleetMetrics hdr = simulate(hdr_run);

  // Counters and exact statistics do not change with the percentile mode.
  EXPECT_EQ(exact.completed, hdr.completed);
  EXPECT_EQ(exact.shed_requests, hdr.shed_requests);
  EXPECT_EQ(exact.mean_latency_s, hdr.mean_latency_s);
  EXPECT_EQ(exact.max_latency_s, hdr.max_latency_s);
  EXPECT_EQ(exact.fleet_energy_j, hdr.fleet_energy_j);
  // Percentiles agree within the configured relative error.
  EXPECT_LE(rel_err(hdr.p50_latency_s, exact.p50_latency_s), 1.05 * 0.01);
  EXPECT_LE(rel_err(hdr.p95_latency_s, exact.p95_latency_s), 1.05 * 0.01);
  EXPECT_LE(rel_err(hdr.p99_latency_s, exact.p99_latency_s), 1.05 * 0.01);
  EXPECT_LE(rel_err(hdr.p999_latency_s, exact.p999_latency_s), 1.05 * 0.01);
  for (std::size_t t = 0; t < exact.tenants.size(); ++t) {
    EXPECT_EQ(exact.tenants[t].completed, hdr.tenants[t].completed);
    EXPECT_LE(rel_err(hdr.tenants[t].p99_latency_s, exact.tenants[t].p99_latency_s),
              1.05 * 0.01);
  }

  // The sketched path is itself bit-reproducible.
  Scenario hdr_again = faulty_scenario();
  hdr_again.sim.percentile_mode = PercentileMode::kHdr;
  hdr_again.sim.hdr_relative_error = 0.01;
  const FleetMetrics hdr2 = simulate(hdr_again);
  EXPECT_EQ(hdr.p50_latency_s, hdr2.p50_latency_s);
  EXPECT_EQ(hdr.p99_latency_s, hdr2.p99_latency_s);
  EXPECT_EQ(hdr.p999_latency_s, hdr2.p999_latency_s);
}

TEST(PercentileModes, CampaignWiresTheModeThrough) {
  const WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  CampaignConfig cfg;
  cfg.fleet_template = {"tron"};
  cfg.qps = {0.8 * fleet_capacity_qps(catalog, "tron", 2, 8)};
  cfg.schedulers = {SchedulerKind::kDynamicBatch};
  cfg.fleet_sizes = {2};
  cfg.max_batches = {8};
  cfg.requests_per_point = 5000;
  cfg.percentile_mode = PercentileMode::kHdr;
  cfg.hdr_relative_error = 0.02;
  cfg.seed = 5;
  const std::vector<CampaignPoint> points = run_campaign(cfg, catalog);
  ASSERT_EQ(points.size(), 1u);

  // Campaign point 0 == a direct simulate with the point-0 derived seed.
  Scenario scenario;
  scenario.fleet = FleetConfig::cycled(cfg.fleet_template, 2, cfg.routing);
  scenario.catalog = catalog;
  scenario.scheduler = SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = 8;
  scenario.batch.max_wait_s = cfg.max_wait_s;
  scenario.sim.slo_scale = cfg.slo_scale;
  scenario.sim.percentile_mode = cfg.percentile_mode;
  scenario.sim.hdr_relative_error = cfg.hdr_relative_error;
  scenario.traffic.open.offered_qps = cfg.qps.front();
  scenario.traffic.open.request_count = cfg.requests_per_point;
  scenario.traffic.open.seed = cfg.seed + 0x9E3779B9u;
  const FleetMetrics direct = simulate(scenario);
  EXPECT_EQ(points.front().metrics.p50_latency_s, direct.p50_latency_s);
  EXPECT_EQ(points.front().metrics.p99_latency_s, direct.p99_latency_s);
  EXPECT_EQ(points.front().metrics.completed, direct.completed);

  const FleetMetrics again = simulate(scenario);
  EXPECT_EQ(direct.p99_latency_s, again.p99_latency_s);
}

TEST(PercentileModes, NamesRoundTripAndBadValuesThrow) {
  EXPECT_EQ(percentile_mode_from_name("exact"), PercentileMode::kExact);
  EXPECT_EQ(percentile_mode_from_name("hdr"), PercentileMode::kHdr);
  EXPECT_STREQ(percentile_mode_name(PercentileMode::kHdr), "hdr");
  EXPECT_THROW((void)percentile_mode_from_name("bogus"), InvalidArgument);
  Scenario bad = faulty_scenario();
  bad.sim.percentile_mode = PercentileMode::kHdr;
  bad.sim.hdr_relative_error = 1.0;
  EXPECT_THROW(simulate(bad), InvalidArgument);
}

// ---------------------------------------------------------------------------
// FleetMetrics::to_table section gates
// ---------------------------------------------------------------------------

TEST(FleetMetricsTable, SuppressesAllZeroRobustnessAndAutoscaleSections) {
  WorkloadCatalog catalog = WorkloadCatalog::tron_default();
  Scenario scenario;
  scenario.fleet = FleetConfig::homogeneous("tron", 2);
  scenario.catalog = catalog;
  scenario.scheduler = SchedulerKind::kDynamicBatch;
  scenario.batch.max_batch = 8;
  scenario.traffic.open.offered_qps = 0.5 * fleet_capacity_qps(catalog, "tron", 2, 8);
  scenario.traffic.open.request_count = 3000;
  scenario.traffic.open.seed = 3;
  const FleetMetrics clean = simulate(scenario);
  std::ostringstream clean_table;
  clean.to_table("clean").print(clean_table);
  EXPECT_EQ(clean_table.str().find("slot failures"), std::string::npos);
  EXPECT_EQ(clean_table.str().find("shed (admission)"), std::string::npos);
  EXPECT_EQ(clean_table.str().find("autoscale grows"), std::string::npos);
  EXPECT_NE(clean_table.str().find("p99 latency"), std::string::npos);

  const FleetMetrics faulty = simulate(faulty_scenario(4000));
  std::ostringstream faulty_table;
  faulty.to_table("faulty").print(faulty_table);
  EXPECT_NE(faulty_table.str().find("slot failures"), std::string::npos);
  EXPECT_NE(faulty_table.str().find("shed (admission)"), std::string::npos);
  EXPECT_NE(faulty_table.str().find("requeued requests"), std::string::npos);
}

}  // namespace
}  // namespace lumos::serve
